"""Cross-topology conformance matrix, driven by the run-table harness.

Every registered protocol is exercised at every (metric, topology) cell
of the scenario-axis grid -- L-infinity and L2, torus and bounded grid
-- and must satisfy the *grading invariants* that hold regardless of
which axis levels are active:

- **safety**: below the protocol's fault budget no correct node ever
  commits a wrong value (crash faults cannot lie, so crash cells are
  trivially safe; Byzantine cells face a lying adversary);
- **agreement**: correct nodes that commit, commit the same value;
- **determinism**: re-executing the identical table reproduces every
  trial row byte-for-byte.

Liveness is deliberately *not* asserted off the (linf, torus) axis: the
paper's achievability theorems are L-infinity torus results, and e.g.
random placements on a bounded L2 grid can legitimately block the wave
(boundary nodes have truncated neighborhoods).  The matrix grades what
must hold everywhere, and the golden pins at the bottom freeze one
empirical L2 threshold so the open-constants behavior cannot drift
silently.
"""

import json

import pytest

from repro.core.thresholds import byzantine_linf_max_t, crash_linf_max_t
from repro.exec import (
    RunTable,
    ScenarioSpec,
    derive_seed,
    execute_runtable,
    run_trial,
)
from repro.experiments.scenarios import (
    byzantine_broadcast_scenario,
    crash_broadcast_scenario,
)
from repro.protocols.registry import protocol_names

ALL_PROTOCOLS = sorted(protocol_names())
BYZANTINE_SAFE = [p for p in ALL_PROTOCOLS if p != "crash-flood"]

METRICS = ("linf", "l2")
TOPOLOGIES = ("torus", "bounded")


def _matrix_tables():
    """The conformance grid as two run tables (one per fault kind).

    Byzantine-tolerant protocols face a lying adversary at the r=1
    L-infinity budget; crash-flood runs under crash faults at its own
    budget.  Together the expansions cover all five registry protocols
    at every (metric, topology) cell.
    """
    byz = RunTable(
        name="conformance-byzantine",
        factors=(
            ("protocol", tuple(BYZANTINE_SAFE)),
            ("metric", METRICS),
            ("topology", TOPOLOGIES),
        ),
        base=(
            ("kind", "byzantine"),
            ("r", 1),
            ("t", byzantine_linf_max_t(1)),
            ("strategy", "liar"),
            ("placement", "random"),
            ("max_rounds", 60),
        ),
        repetitions=2,
    )
    crash = RunTable(
        name="conformance-crash",
        factors=(
            ("metric", METRICS),
            ("topology", TOPOLOGIES),
        ),
        base=(
            ("kind", "crash"),
            ("r", 1),
            ("t", crash_linf_max_t(1)),
            ("protocol", "crash-flood"),
            ("placement", "random"),
            ("max_rounds", 60),
        ),
        repetitions=2,
    )
    return byz, crash


class TestConformanceMatrix:
    def test_covers_all_protocols_and_cells(self):
        byz, crash = _matrix_tables()
        units = byz.expand() + crash.expand()
        covered = {
            (
                dict(u.levels).get("protocol", "crash-flood"),
                dict(u.levels)["metric"],
                dict(u.levels)["topology"],
            )
            for u in units
        }
        assert covered == {
            (p, m, topo)
            for p in ALL_PROTOCOLS
            for m in METRICS
            for topo in TOPOLOGIES
        }

    def test_no_wrong_commits_below_budget(self):
        """Safety holds at every cell: liars never induce a wrong commit
        in a correct node, on either metric and either topology."""
        for table in _matrix_tables():
            result = execute_runtable(table, root_seed=0)
            for unit, rows in zip(result.units, result.rows):
                for row in rows:
                    assert row["safe"], (unit.run_id, row)

    def test_rerun_is_byte_identical(self):
        """The determinism contract survives the new axes: identical
        tables expand to identical specs and replay identical rows."""
        byz, _ = _matrix_tables()
        first = execute_runtable(byz, root_seed=0)
        second = execute_runtable(byz, root_seed=0)
        assert json.dumps(first.rows, sort_keys=True) == json.dumps(
            second.rows, sort_keys=True
        )
        assert [u.run_id for u in first.units] == [
            u.run_id for u in second.units
        ]


class TestAgreement:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("protocol", BYZANTINE_SAFE)
    def test_byzantine_correct_committers_agree(
        self, protocol, metric, topology
    ):
        sc = byzantine_broadcast_scenario(
            r=1,
            t=byzantine_linf_max_t(1),
            protocol=protocol,
            strategy="liar",
            placement="random",
            metric=metric,
            topology_kind=topology,
            seed=3,
            max_rounds=60,
        )
        out = sc.run()
        committed = {
            value
            for node, value in out.result.committed().items()
            if node not in sc.faulty_nodes
        }
        assert committed <= {sc.value}, (protocol, metric, topology)

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("metric", METRICS)
    def test_crash_correct_committers_agree(self, metric, topology):
        sc = crash_broadcast_scenario(
            r=1,
            t=crash_linf_max_t(1),
            placement="random",
            metric=metric,
            topology_kind=topology,
            seed=3,
            max_rounds=60,
        )
        out = sc.run()
        committed = {
            value
            for node, value in out.result.committed().items()
            if node not in sc.faulty_nodes
        }
        assert committed <= {sc.value}, (metric, topology)


# -- golden pins: the empirical L2 strip threshold at r=1 --------------------
#
# The open L2 constants mean there is no theorem to pin against, so we
# pin the *measured* flip instead: the crash strip construction under
# the Euclidean metric at r=1 (root seed 5) achieves broadcast up to
# t=2 and is blocked from t=3 on.  Exact trial rows, frozen; any engine,
# seeding, or key change that moves L2 behavior breaks these loudly.

L2_STRIP_GOLDEN = {
    2: {
        "achieved": True,
        "safe": True,
        "live": True,
        "undecided": 0,
        "rounds": 2,
        "messages": 109,
        "faults": 13,
    },
    3: {
        "achieved": False,
        "safe": True,
        "live": False,
        "undecided": 66,
        "rounds": 2,
        "messages": 34,
        "faults": 22,
    },
    4: {
        "achieved": False,
        "safe": True,
        "live": False,
        "undecided": 66,
        "rounds": 2,
        "messages": 34,
        "faults": 22,
    },
}


class TestL2GoldenPins:
    @pytest.mark.parametrize("t", sorted(L2_STRIP_GOLDEN))
    def test_l2_strip_exact_row(self, t):
        spec = ScenarioSpec(
            kind="crash",
            r=1,
            t=t,
            protocol="crash-flood",
            placement="strip",
            metric="l2",
            trials=1,
        )
        seed = derive_seed(5, spec.scenario_key(), 0)
        assert run_trial(spec, seed) == L2_STRIP_GOLDEN[t]

    def test_flip_is_between_t2_and_t3(self):
        assert L2_STRIP_GOLDEN[2]["achieved"]
        assert not L2_STRIP_GOLDEN[3]["achieved"]
        assert not L2_STRIP_GOLDEN[4]["achieved"]


# -- run-table properties (hypothesis) ---------------------------------------

from hypothesis import HealthCheck, given, settings  # noqa: E402

from repro.exec import RunTable as _RunTable  # noqa: E402

from .strategies import run_tables  # noqa: E402

_PROP = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRunTableProperties:
    @_PROP
    @given(table=run_tables())
    def test_expansion_deterministic(self, table):
        """Two expansions of one table are the same object list -- same
        run ids, same scenario keys, same order (no hash-order leaks)."""
        first = table.expand()
        second = table.expand()
        assert [u.run_id for u in first] == [u.run_id for u in second]
        assert [u.spec.scenario_key() for u in first] == [
            u.spec.scenario_key() for u in second
        ]

    @_PROP
    @given(table=run_tables())
    def test_expansion_duplicate_free(self, table):
        units = table.expand()
        keys = [u.spec.scenario_key() for u in units]
        assert len(set(keys)) == len(keys) == table.num_runs()
        run_ids = [u.run_id for u in units]
        assert len(set(run_ids)) == len(run_ids)

    @_PROP
    @given(table=run_tables())
    def test_json_round_trip_preserves_expansion(self, table):
        """``from_dict(as_dict())`` is the identity, down to every
        expanded cell's scenario key."""
        clone = _RunTable.from_dict(
            json.loads(json.dumps(table.as_dict()))
        )
        assert clone == table
        assert [u.spec.scenario_key() for u in clone.expand()] == [
            u.spec.scenario_key() for u in table.expand()
        ]

    @_PROP
    @given(table=run_tables())
    def test_spec_key_round_trip(self, table):
        """Every expanded spec survives its own dict round-trip with an
        identical scenario key (the seed-derivation identity)."""
        for unit in table.expand():
            clone = ScenarioSpec.from_dict(unit.spec.as_dict())
            assert clone.scenario_key() == unit.spec.scenario_key()
            assert clone == unit.spec
