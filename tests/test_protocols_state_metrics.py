"""Tests for per-protocol evidence-state accounting."""

from repro.experiments.scenarios import byzantine_broadcast_scenario, recommended_torus
from repro.protocols.registry import correct_process_map
from repro.radio.run import run_broadcast


def run_and_collect(protocol):
    sc = byzantine_broadcast_scenario(
        r=1, t=1, protocol=protocol, strategy="liar"
    )
    sc.validate()
    out = sc.run()
    return {
        node: proc.evidence_state_size()
        for node, proc in out.result.processes.items()
        if node in sc.correct_nodes
    }


class TestStateAccounting:
    def test_cpa_state_bounded_by_neighborhood(self):
        sizes = run_and_collect("cpa")
        assert all(0 <= s <= 8 for s in sizes.values())  # at most nbd size

    def test_two_hop_stores_chains(self):
        sizes = run_and_collect("bv-two-hop")
        assert max(sizes.values()) > 8  # chains beyond direct announcements

    def test_earmarked_leaner_than_indirect(self):
        """The paper's earmarking claim, as a per-node comparison."""
        indirect = run_and_collect("bv-indirect")
        earmarked = run_and_collect("bv-earmarked")
        assert max(earmarked.values()) < max(indirect.values())
        mean_i = sum(indirect.values()) / len(indirect)
        mean_e = sum(earmarked.values()) / len(earmarked)
        assert mean_e < mean_i

    def test_crash_flood_default_zero(self):
        torus = recommended_torus(1)
        correct = set(torus.nodes())
        procs = correct_process_map(
            torus, "crash-flood", 0, (0, 0), 1, correct
        )
        run_broadcast(torus, procs, 1, correct)
        assert all(p.evidence_state_size() == 0 for p in procs.values())
