"""Tests for repro.analysis.packing, including a brute-force oracle."""

from itertools import combinations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.packing import (
    PackingBudgetExceeded,
    find_set_packing,
    has_packing_of_size,
    max_set_packing,
)


def brute_force_max_packing(sets):
    """Exponential oracle: try all subsets, largest disjoint family."""
    frozen = [frozenset(s) for s in sets if s]
    best = 0
    for k in range(len(frozen), 0, -1):
        for combo in combinations(frozen, k):
            union = set()
            total = 0
            for s in combo:
                union |= s
                total += len(s)
            if len(union) == total:  # pairwise disjoint
                return k
        if best:
            break
    return best


small_sets = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=12), min_size=1, max_size=3),
    min_size=0,
    max_size=8,
)


class TestExactness:
    @given(small_sets)
    def test_matches_bruteforce(self, sets):
        assert max_set_packing(sets) == brute_force_max_packing(sets)

    @given(small_sets, st.integers(min_value=1, max_value=6))
    def test_target_consistency(self, sets, k):
        has = has_packing_of_size(sets, k)
        assert has == (brute_force_max_packing(sets) >= k)

    def test_empty(self):
        assert max_set_packing([]) == 0
        assert find_set_packing([]) == []

    def test_singletons_all_pack(self):
        sets = [{i} for i in range(10)]
        assert max_set_packing(sets) == 10

    def test_duplicates_collapse(self):
        assert max_set_packing([{1}, {1}, {1}]) == 1

    def test_dominated_supersets_ignored(self):
        # {1} dominates {1,2}; the optimum uses {1} and {2,3}
        assert max_set_packing([{1, 2}, {1}, {2, 3}]) == 2

    def test_classic_conflict(self):
        sets = [{1, 2}, {2, 3}, {3, 4}]
        assert max_set_packing(sets) == 2

    def test_needs_backtracking(self):
        """Greedy smallest-first can pick {2} then be blocked; the optimum
        requires choosing overlapping-looking sets carefully."""
        sets = [{2}, {1, 3}, {2, 4}, {1, 5}, {3, 5}]
        # optimum: {2}, {1,3} -> blocked for {1,5},{3,5}; or {2},{1,5},{3,?}
        # brute force decides:
        assert max_set_packing(sets) == brute_force_max_packing(sets)


class TestWitness:
    @given(small_sets)
    def test_witness_is_valid_packing(self, sets):
        packing = find_set_packing(sets)
        union = set()
        for s in packing:
            assert union.isdisjoint(s)
            union |= s

    @given(small_sets, st.integers(min_value=1, max_value=5))
    def test_target_truncates(self, sets, k):
        packing = find_set_packing(sets, target=k)
        if brute_force_max_packing(sets) >= k:
            assert len(packing) == k

    def test_zero_target(self):
        assert find_set_packing([{1}], target=0) == []
        assert has_packing_of_size([], 0)


class TestBudget:
    def test_budget_trips_on_adversarial_instance(self):
        # Dense overlap forces branching (the greedy fast path cannot
        # reach the unreachable target); a tiny budget must trip.
        sets = [
            frozenset({i, j, k})
            for i in range(12)
            for j in range(i + 1, 12)
            for k in range(j + 1, 12)
        ]
        with pytest.raises(PackingBudgetExceeded):
            find_set_packing(sets, target=5, budget=3)

    def test_generous_budget_succeeds(self):
        sets = [{3 * i, 3 * i + 1, 3 * i + 2} for i in range(5)]
        assert max_set_packing(sets, budget=10_000) == 5


class TestProtocolShapedInstances:
    """Shapes the commit rules actually produce."""

    def test_chain_instance(self):
        """2t+1 disjoint chains plus adversarial overlapping fakes."""
        t = 4
        honest = [frozenset({("n", i)}) for i in range(t + 1)]
        honest += [
            frozenset({("n", t + 1 + i), ("m", i)}) for i in range(t)
        ]
        # fakes all share the same poisoned relay
        fakes = [frozenset({("x", i), ("bad", 0)}) for i in range(6)]
        assert has_packing_of_size(honest + fakes, 2 * t + 1)
        # fakes alone cannot reach t+1 disjoint chains beyond 1+...
        assert max_set_packing(fakes) == 1

    def test_relay_paths_instance(self):
        """Four-hop relay sets of size up to 3."""
        paths = [
            frozenset({(i, 0)}) for i in range(3)
        ] + [
            frozenset({(i, 1), (i, 2)}) for i in range(3)
        ] + [
            frozenset({(i, 3), (i, 4), (i, 5)}) for i in range(3)
        ]
        assert max_set_packing(paths) == 9
