"""Tests for Section X made executable: ChannelImperfections, spoofing,
jamming, loss, and retransmission (repro.radio.channel / .resilience,
repro.faults.channel_attacks)."""

import pytest

from repro.errors import ConfigurationError, ProtocolViolationError, SpoofingError
from repro.experiments.scenarios import recommended_torus
from repro.faults.channel_attacks import (
    NeighborFramer,
    RoundJammer,
    SourceImpersonator,
)
from repro.grid.torus import Torus
from repro.protocols.registry import correct_process_map
from repro.radio.channel import PERFECT_CHANNEL, ChannelImperfections
from repro.radio.engine import Engine
from repro.radio.node import FunctionProcess, NodeProcess
from repro.radio.resilience import RetransmittingProcess
from repro.radio.run import run_broadcast


class Broadcaster(NodeProcess):
    def __init__(self, payloads):
        self.payloads = list(payloads)

    def on_start(self, ctx):
        for p in self.payloads:
            ctx.broadcast(p)


def collector(log):
    return FunctionProcess(on_receive=lambda ctx, env: log.append(env))


class TestChannelConfig:
    def test_defaults_are_perfect(self):
        assert PERFECT_CHANNEL.is_perfect
        assert ChannelImperfections().is_perfect

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChannelImperfections(loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            ChannelImperfections(loss_rate=-0.1)
        with pytest.raises(ConfigurationError):
            ChannelImperfections(tx_copies=0)
        with pytest.raises(ConfigurationError):
            ChannelImperfections(max_jam_rounds_per_node=-1)

    def test_imperfect_flags(self):
        assert not ChannelImperfections(allow_spoofing=True).is_perfect
        assert not ChannelImperfections(loss_rate=0.5).is_perfect
        assert not ChannelImperfections(tx_copies=3).is_perfect


class TestSpoofingEnforcement:
    def test_spoofing_rejected_on_perfect_channel(self):
        """The engine enforces the no-spoofing assumption."""
        t = Torus.square(5, 1)
        eng = Engine(t, {(0, 0): SourceImpersonator(0, source=(2, 2))})
        with pytest.raises(SpoofingError, match="forbids address spoofing"):
            eng.run()

    def test_spoofed_sender_stamped_when_allowed(self):
        t = Torus.square(5, 1)
        log = []
        eng = Engine(
            t,
            {
                (1, 1): SourceImpersonator(0, source=(4, 4)),
                (1, 2): collector(log),
            },
            channel=ChannelImperfections(allow_spoofing=True),
        )
        eng.run()
        assert log and log[0].sender == (4, 4)  # the forged identity

    def test_source_impersonation_breaks_safety(self):
        """Section X: with spoofing, ONE Byzantine node defeats reliable
        broadcast (CPA's direct-source rule is poisoned)."""
        torus = recommended_torus(1)
        attacker = (3, 3)  # far from the true source (0,0)
        correct = set(torus.nodes()) - {attacker}
        processes = correct_process_map(torus, "cpa", 1, (0, 0), 1, correct)
        processes[attacker] = SourceImpersonator(0, source=(0, 0))
        out = run_broadcast(
            torus,
            processes,
            1,
            correct,
            channel=ChannelImperfections(allow_spoofing=True),
        )
        assert not out.safe
        assert out.wrong_commits  # neighbors of the impersonator got 0

    def test_neighbor_framer_breaks_cpa(self):
        torus = recommended_torus(1)
        attacker = (3, 3)
        correct = set(torus.nodes()) - {attacker}
        processes = correct_process_map(torus, "cpa", 1, (0, 0), 1, correct)
        processes[attacker] = NeighborFramer(0)
        out = run_broadcast(
            torus,
            processes,
            1,
            correct,
            channel=ChannelImperfections(allow_spoofing=True),
        )
        assert not out.safe

    def test_same_attacks_harmless_without_spoofing_permission(self):
        """On the enforced channel the attack cannot even be expressed."""
        torus = recommended_torus(1)
        attacker = (3, 3)
        correct = set(torus.nodes()) - {attacker}
        processes = correct_process_map(torus, "cpa", 1, (0, 0), 1, correct)
        processes[attacker] = NeighborFramer(0)
        with pytest.raises(SpoofingError):
            run_broadcast(torus, processes, 1, correct)


class TestJamming:
    def test_jam_rejected_on_perfect_channel(self):
        t = Torus.square(5, 1)
        eng = Engine(t, {(0, 0): RoundJammer()}, max_rounds=2)
        with pytest.raises(ProtocolViolationError, match="forbids deliberate"):
            eng.run()

    def test_jam_blocks_neighborhood(self):
        t = Torus.square(7, 1)
        log = []
        eng = Engine(
            t,
            {
                (0, 0): Broadcaster(["m"]),
                (1, 1): collector(log),  # neighbor of both sender & jammer
                (1, 0): RoundJammer(),
            },
            channel=ChannelImperfections(allow_jamming=True),
            max_rounds=3,
        )
        eng.run()
        assert log == []  # (1,1) is within the jammer's radius

    def test_jam_does_not_reach_far_nodes(self):
        t = Torus.square(9, 1)
        log = []
        eng = Engine(
            t,
            {
                (5, 5): Broadcaster(["m"]),
                (5, 6): collector(log),
                (0, 0): RoundJammer(),  # far away
            },
            channel=ChannelImperfections(allow_jamming=True),
            max_rounds=3,
        )
        eng.run()
        assert [e.payload for e in log] == ["m"]

    def test_single_unbounded_jammer_blocks_broadcast(self):
        """One jamming fault defeats crash-flood: its neighbors never
        receive anything (the Section X impossibility)."""
        torus = recommended_torus(1)
        jammer = (3, 3)
        correct = set(torus.nodes()) - {jammer}
        processes = correct_process_map(
            torus, "crash-flood", 0, (0, 0), 1, correct
        )
        processes[jammer] = RoundJammer()
        out = run_broadcast(
            torus,
            processes,
            1,
            correct,
            channel=ChannelImperfections(allow_jamming=True),
            max_rounds=30,
        )
        assert not out.live
        assert set(out.undecided) == set(torus.neighbors(jammer))

    def test_jam_budget_enforced(self):
        t = Torus.square(7, 1)
        jammer = RoundJammer()
        eng = Engine(
            t,
            {(0, 0): jammer, (3, 3): Broadcaster(["x"])},
            channel=ChannelImperfections(
                allow_jamming=True, max_jam_rounds_per_node=2
            ),
            max_rounds=6,
        )
        eng.run()
        assert jammer.jams_effective == 2

    def test_bounded_jamming_plus_retransmission_recovers(self):
        """Section X's positive claim: bounded collisions are beaten by
        retransmitting more times than the jam budget."""
        torus = recommended_torus(1)
        jammer = (3, 3)
        budget = 2
        correct = set(torus.nodes()) - {jammer}
        processes = {
            node: RetransmittingProcess(proc, repeats=budget + 2)
            for node, proc in correct_process_map(
                torus, "crash-flood", 0, (0, 0), 1, correct
            ).items()
        }
        processes[jammer] = RoundJammer()
        out = run_broadcast(
            torus,
            processes,
            1,
            correct,
            channel=ChannelImperfections(
                allow_jamming=True, max_jam_rounds_per_node=budget
            ),
            max_rounds=60,
        )
        assert out.achieved, out.summary()


class TestLossAndRetransmission:
    def test_loss_drops_deliveries(self):
        t = Torus.square(5, 1)
        log = []
        eng = Engine(
            t,
            {(1, 1): Broadcaster(list(range(200))), (1, 2): collector(log)},
            channel=ChannelImperfections(loss_rate=0.5, seed=1),
        )
        eng.run()
        assert 40 < len(log) < 160  # ~100 expected of 200

    def test_loss_deterministic_by_seed(self):
        def run(seed):
            t = Torus.square(5, 1)
            log = []
            eng = Engine(
                t,
                {(1, 1): Broadcaster(list(range(50))), (1, 2): collector(log)},
                channel=ChannelImperfections(loss_rate=0.3, seed=seed),
            )
            eng.run()
            return [e.payload for e in log]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_tx_copies_multiply_transmissions(self):
        t = Torus.square(5, 1)
        eng = Engine(
            t,
            {(1, 1): Broadcaster(["a", "b"])},
            channel=ChannelImperfections(tx_copies=3),
        )
        res = eng.run()
        assert res.trace.transmissions == 6

    def test_copies_beat_loss_for_broadcast(self):
        """The probabilistic local-broadcast primitive: enough copies make
        a lossy run behave like the reliable one."""
        torus = recommended_torus(1)
        correct = set(torus.nodes())
        processes = correct_process_map(
            torus, "bv-two-hop", 0, (0, 0), 1, correct
        )
        out = run_broadcast(
            torus,
            processes,
            1,
            correct,
            channel=ChannelImperfections(loss_rate=0.2, tx_copies=8, seed=3),
            max_rounds=100,
        )
        assert out.achieved

    def test_lossy_single_copy_can_fail(self):
        """With heavy loss and no redundancy, the reliable-local-broadcast
        assumption is gone and liveness generally fails."""
        torus = recommended_torus(1)
        correct = set(torus.nodes())
        processes = correct_process_map(torus, "cpa", 1, (0, 0), 1, correct)
        out = run_broadcast(
            torus,
            processes,
            1,
            correct,
            channel=ChannelImperfections(loss_rate=0.9, seed=0),
            max_rounds=50,
        )
        assert not out.live
        assert out.safe  # safety is loss-immune (missing info only)


class TestAttackEdgeCases:
    """Schedule and boundary corner cases for the attack strategies."""

    def test_zero_round_jam_schedule_is_harmless(self):
        """An empty attack schedule (``rounds_to_jam=0``) never fires:
        the broadcast completes exactly as if the node were correct."""
        torus = recommended_torus(1)
        node = (3, 3)
        jammer = RoundJammer(rounds_to_jam=0)
        correct = set(torus.nodes()) - {node}
        processes = correct_process_map(
            torus, "crash-flood", 0, (0, 0), 1, correct
        )
        processes[node] = jammer
        out = run_broadcast(
            torus,
            processes,
            1,
            correct,
            channel=ChannelImperfections(allow_jamming=True),
            max_rounds=60,
        )
        assert out.achieved, out.summary()
        assert jammer.jams_effective == 0

    def test_attack_from_crashed_node_never_fires(self):
        """A spoofing attacker crash-stopped at round 0 emits nothing:
        the Byzantine fault degrades to a plain crash and safety holds."""
        torus = recommended_torus(1)
        attacker = (3, 3)
        correct = set(torus.nodes()) - {attacker}
        processes = correct_process_map(torus, "cpa", 1, (0, 0), 1, correct)
        processes[attacker] = SourceImpersonator(0, source=(0, 0))
        out = run_broadcast(
            torus,
            processes,
            1,
            correct,
            crash_round={attacker: 0},
            channel=ChannelImperfections(allow_spoofing=True),
            max_rounds=60,
        )
        assert out.safe
        assert not out.wrong_commits

    def test_framer_forged_senders_wrap_on_torus(self):
        """A framer on the torus boundary forges sender coordinates that
        canonicalize onto the grid -- no off-grid identities leak."""
        t = Torus.square(7, 1)
        log = []
        eng = Engine(
            t,
            {(0, 0): NeighborFramer("bad"), (1, 0): collector(log)},
            channel=ChannelImperfections(allow_spoofing=True),
            max_rounds=3,
        )
        eng.run()
        senders = {e.sender for e in log}
        assert senders <= set(t.nodes())
        assert (6, 6) in senders  # forged (-1, -1), wrapped
        assert len(senders) == 8  # one identity per L-inf r=1 offset


class TestRetransmittingProcess:
    def test_repeats_validation(self):
        with pytest.raises(ConfigurationError):
            RetransmittingProcess(NodeProcess(), repeats=0)

    def test_repeats_across_rounds(self):
        t = Torus.square(5, 1)
        log = []
        inner = Broadcaster(["hello"])
        eng = Engine(
            t,
            {
                (1, 1): RetransmittingProcess(inner, repeats=3),
                (1, 2): collector(log),
            },
            max_rounds=10,
        )
        eng.run()
        assert [e.payload for e in log] == ["hello"] * 3
        rounds = [e.round for e in log]
        # a start-time broadcast may share its first repeat's frame, but
        # the copies must span at least two distinct rounds
        assert len(set(rounds)) >= 2

    def test_halt_deferred_until_repeats_flushed(self):
        t = Torus.square(5, 1)
        log = []

        class AnnounceAndHalt(NodeProcess):
            def on_start(self, ctx):
                ctx.broadcast("bye")
                ctx.halt()

        eng = Engine(
            t,
            {
                (1, 1): RetransmittingProcess(AnnounceAndHalt(), repeats=3),
                (1, 2): collector(log),
            },
            max_rounds=10,
        )
        eng.run()
        assert [e.payload for e in log] == ["bye"] * 3

    def test_committed_value_delegates(self):
        from repro.protocols.cpa import CPAProtocol

        inner = CPAProtocol(0, (0, 0), source_value=7)
        wrapped = RetransmittingProcess(inner, repeats=2)
        assert wrapped.committed_value() is None
        t = Torus.square(5, 1)
        eng = Engine(t, {(0, 0): wrapped})
        eng.run()
        assert wrapped.committed_value() == 7
