"""Equivalence of the torus (simulation substrate) with the infinite grid
(analysis substrate) away from the wrap.

The paper's claim that a finite toroidal network eliminates boundary
anomalies is what licenses simulating its infinite-grid theorems on a
torus.  These properties pin down the precise sense in which that holds
in this library: local structure (neighborhoods, distances, frontier
shapes) is identical once the torus is large enough."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scenarios import recommended_torus
from repro.grid.bounded import BoundedGrid
from repro.grid.neighborhoods import nbd, pnbd_frontier
from repro.grid.topology import InfiniteGrid
from repro.grid.torus import Torus

radii = st.integers(min_value=1, max_value=3)
coords = st.tuples(
    st.integers(min_value=-30, max_value=30),
    st.integers(min_value=-30, max_value=30),
)


class TestTorusMatchesInfiniteGrid:
    @given(radii, coords)
    @settings(max_examples=25)
    def test_neighborhood_isomorphic(self, r, p):
        """The torus neighborhood of any node is the wrapped image of the
        infinite-grid neighborhood, with no collapses."""
        torus = recommended_torus(r)
        grid = InfiniteGrid(r)
        torus_nbrs = set(torus.neighbors(p))
        grid_nbrs = {torus.canonical(q) for q in grid.neighbors(p)}
        assert torus_nbrs == grid_nbrs
        assert len(torus_nbrs) == grid.neighborhood_size()

    @given(radii, coords, coords)
    @settings(max_examples=25)
    def test_local_distances_agree(self, r, a, b):
        """For points within half the torus side of each other, wrapped
        distance equals plain distance."""
        torus = recommended_torus(r)
        grid = InfiniteGrid(r)
        dx = abs(a[0] - b[0])
        dy = abs(a[1] - b[1])
        if dx <= torus.width // 2 and dy <= torus.height // 2:
            assert torus.distance(a, b) == grid.metric.distance(a, b)

    @given(radii)
    def test_frontier_shape_preserved(self, r):
        """The pnbd frontier ring wraps injectively on a recommended
        torus (no two frontier nodes collapse)."""
        torus = recommended_torus(r)
        ring = pnbd_frontier((0, 0), r)
        wrapped = {torus.canonical(p) for p in ring}
        assert len(wrapped) == len(ring)

    @given(radii)
    def test_bounded_interior_matches_infinite(self, r):
        """Interior nodes of a bounded grid see infinite-grid
        neighborhoods."""
        side = 6 * r + 1
        grid = BoundedGrid.square(side, r)
        infinite = InfiniteGrid(r)
        center = (side // 2, side // 2)
        assert set(grid.neighbors(center)) == set(
            infinite.neighbors(center)
        )

    @given(radii, st.integers(min_value=0, max_value=3))
    @settings(max_examples=10)
    def test_minimum_torus_still_injective(self, r, extra):
        """Even at the minimum legal side (2r+1), neighborhoods contain no
        duplicates (the constructor's invariant)."""
        torus = Torus.square(2 * r + 1 + extra, r)
        nbrs = torus.neighbors((0, 0))
        assert len(set(nbrs)) == len(nbrs)
