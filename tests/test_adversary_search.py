"""End-to-end adversary search: finds counterexamples exactly above the
thresholds, never below, deterministically for any worker count."""

import json

import pytest

from repro.adversary import (
    AttackScore,
    SearchConfig,
    UNDECIDED_WEIGHT,
    WRONG_COMMIT_WEIGHT,
    certify_placement,
    certify_result,
    run_search,
    score_row,
)
from repro.core.thresholds import (
    crash_linf_threshold,
    koo_impossibility_bound,
)
from repro.errors import ConfigurationError, InvalidPlacementError
from repro.exec import ResultCache
from repro.experiments.scenarios import byzantine_broadcast_scenario


def config(kind, t, **overrides):
    """A small fast r=1 search config."""
    defaults = dict(
        kind=kind,
        r=1,
        t=t,
        byz_strategy="silent",
        seed=1,
        eval_budget=24,
        max_rounds=60,
    )
    defaults.update(overrides)
    return SearchConfig(**defaults)


class TestSearchConfig:
    def test_defaults_resolved(self):
        cfg = config("byzantine", 2)
        assert cfg.protocol == "bv-two-hop"
        assert cfg.torus_side == 11  # strip torus for r=1
        cfg = config("crash", 3)
        assert cfg.protocol == "crash-flood"

    def test_search_key_is_canonical_json(self):
        cfg = config("byzantine", 2)
        payload = json.loads(cfg.search_key())
        assert payload["kind"] == "byzantine"
        assert payload["t"] == 2
        assert cfg.search_key() == config("byzantine", 2).search_key()
        assert cfg.search_key() != config("byzantine", 2, seed=9).search_key()

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            config("gamma-ray", 2)
        with pytest.raises(ConfigurationError):
            config("byzantine", -1)
        with pytest.raises(ConfigurationError):
            config("byzantine", 2, eval_budget=0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            run_search(config("byzantine", 2), strategy="oracle")


class TestObjective:
    def test_weights_are_lexicographic(self):
        full_wave = {"commit_wavefront_by_round": [[0, 5.0]]}
        base = {"achieved": True, "undecided": 0, "metrics": full_wave}
        wrong = score_row({**base, "wrong_commits": 1}, 5)
        undecided = score_row({**base, "undecided": 400}, 5)
        stalled = score_row(
            {**base, "metrics": {"commit_wavefront_by_round": [[0, 1.0]]}},
            5,
        )
        assert wrong.value > undecided.value > stalled.value
        assert wrong.value == WRONG_COMMIT_WEIGHT
        assert undecided.value == 400 * UNDECIDED_WEIGHT
        assert stalled.stall == 4.0

    def test_metrics_required(self):
        with pytest.raises(KeyError):
            score_row({"achieved": True, "undecided": 0}, 5)

    def test_defeated_flag(self):
        row = {"achieved": False, "undecided": 3, "metrics": {}}
        score = score_row(row, 5)
        assert score.defeated
        assert isinstance(score, AttackScore)


@pytest.mark.parametrize("strategy", ["greedy", "hill-climb", "anneal"])
class TestThresholdBoundary:
    """Every strategy rediscovers the impossibility exactly at the
    threshold (r=1: Byzantine t=2, crash t=3) and finds nothing below
    it within the same budget -- Theorems 1/4/5, operationalized."""

    def test_byzantine_found_at_koo_bound(self, strategy):
        t = koo_impossibility_bound(1)
        assert t == 2
        result = run_search(config("byzantine", t), strategy=strategy)
        assert result.defeated
        assert result.best_score.value >= UNDECIDED_WEIGHT

    def test_byzantine_none_below(self, strategy):
        result = run_search(config("byzantine", 1), strategy=strategy)
        assert not result.defeated
        # the search tried (beyond the initial seeds) but stayed within
        # budget; greedy may stop early on its first plateau
        assert 4 <= result.evaluations <= 24

    def test_crash_found_at_threshold(self, strategy):
        t = crash_linf_threshold(1)
        assert t == 3
        result = run_search(config("crash", t), strategy=strategy)
        assert result.defeated

    def test_crash_none_below(self, strategy):
        result = run_search(
            config("crash", 2, eval_budget=12), strategy=strategy
        )
        assert not result.defeated


class TestDeterminism:
    def test_serial_equals_parallel(self):
        cfg = config("byzantine", 2)
        serial = run_search(cfg, strategy="anneal", workers=1)
        parallel = run_search(cfg, strategy="anneal", workers=4)
        assert json.dumps(serial.as_dict(), sort_keys=True) == json.dumps(
            parallel.as_dict(), sort_keys=True
        )

    def test_repeat_run_identical(self):
        cfg = config("crash", 3)
        a = run_search(cfg, strategy="hill-climb")
        b = run_search(cfg, strategy="hill-climb")
        assert a.as_dict() == b.as_dict()

    def test_different_seeds_may_differ_but_both_valid(self):
        r1 = run_search(config("byzantine", 2, seed=1), strategy="greedy")
        r2 = run_search(config("byzantine", 2, seed=2), strategy="greedy")
        for r in (r1, r2):
            assert r.defeated
            certify_result(r)  # raises if the placement is invalid

    def test_cached_rerun_is_pure_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cfg = config("byzantine", 2)
        first = run_search(cfg, strategy="anneal", cache=cache)
        assert first.cache_misses > 0
        again = run_search(cfg, strategy="anneal", cache=cache)
        assert again.cache_misses == 0
        assert again.cache_hits == first.evaluations
        assert again.as_dict()["best_faults"] == first.as_dict()["best_faults"]


class TestCertification:
    def test_certificate_validates_and_replays(self):
        result = run_search(config("byzantine", 2), strategy="anneal")
        cert = certify_result(result)
        assert cert.defeated
        assert cert.worst_nbd <= cert.config.t
        assert cert.trace_events > 0
        assert cert.trace.count("\n") == cert.trace_events
        assert len(cert.trace_sha256) == 64
        payload = cert.as_dict()
        assert payload["defeated"] is True
        assert payload["num_faults"] == len(result.best_faults)

    def test_certificate_is_deterministic(self):
        result = run_search(config("crash", 3), strategy="greedy")
        a = certify_result(result)
        b = certify_result(result)
        assert a.trace_sha256 == b.trace_sha256
        assert a.as_dict() == b.as_dict()

    def test_trace_roundtrip(self, tmp_path):
        result = run_search(config("byzantine", 2), strategy="greedy")
        cert = certify_result(result)
        out = tmp_path / "cert.jsonl"
        assert cert.write_trace(out) == cert.trace_events
        assert out.read_text() == cert.trace

    def test_invalid_placement_refused(self):
        cfg = config("byzantine", 1)
        # a 2-in-one-ball placement against t=1
        with pytest.raises(InvalidPlacementError):
            certify_placement(cfg, [(3, 3), (3, 4)])

    def test_below_threshold_certificate_not_defeated(self):
        cfg = config("byzantine", 1)
        cert = certify_placement(cfg, [(3, 3), (6, 6)])
        assert not cert.defeated
        assert cert.worst_nbd <= 1


class TestExplicitScenarioMode:
    def test_explicit_faults_used_verbatim(self):
        sc = byzantine_broadcast_scenario(
            r=1,
            t=2,
            placement="explicit",
            faults=[(3, 3), (14, 6)],  # (14, 6) wraps on the side-11 torus
            enforce_budget=False,
        )
        assert sc.faulty_nodes == {(3, 3), (3, 6)}

    def test_explicit_requires_faults(self):
        with pytest.raises(ConfigurationError):
            byzantine_broadcast_scenario(r=1, t=2, placement="explicit")

    def test_stray_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            byzantine_broadcast_scenario(
                r=1, t=2, placement="random", faults=[(3, 3)]
            )

    def test_torus_side_conflict_rejected(self):
        from repro.grid.torus import Torus

        with pytest.raises(ConfigurationError):
            byzantine_broadcast_scenario(
                r=1,
                t=2,
                placement="explicit",
                faults=[(3, 3)],
                torus=Torus.square(9, 1),
                torus_side=11,
            )
