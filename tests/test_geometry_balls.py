"""Tests for repro.geometry.balls: cardinality formulas vs enumeration."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.balls import (
    ball_offsets,
    ball_points,
    ball_size,
    half_ball_points,
    l1_ball_size,
    l2_ball_size,
    linf_ball_size,
)
from repro.geometry.metrics import L1, L2, LINF

radii = st.integers(min_value=0, max_value=8)


class TestCardinalityFormulas:
    @given(radii)
    def test_linf_formula_matches_enumeration(self, r):
        assert linf_ball_size(r) == len(LINF.offsets(r))

    @given(radii)
    def test_l1_formula_matches_enumeration(self, r):
        assert l1_ball_size(r) == len(L1.offsets(r))

    @given(radii)
    def test_l2_count_matches_enumeration(self, r):
        assert l2_ball_size(r) == len(L2.offsets(r))

    def test_linf_known_values(self):
        assert linf_ball_size(1) == 8
        assert linf_ball_size(2) == 24
        assert linf_ball_size(3) == 48

    def test_l2_approaches_pi_r_squared(self):
        # Gauss circle: area pi r^2 with O(r) error.
        r = 50
        count = l2_ball_size(r) + 1  # include the center
        import math

        assert abs(count - math.pi * r * r) < 4 * r

    @given(st.sampled_from(["l1", "l2", "linf"]), radii)
    def test_ball_size_dispatch(self, name, r):
        assert ball_size(name, r) == len(ball_offsets(name, r))

    def test_negative_radius_rejected(self):
        for fn in (linf_ball_size, l1_ball_size, l2_ball_size):
            with pytest.raises(ValueError):
                fn(-1)


class TestBallPoints:
    def test_excludes_center(self):
        pts = ball_points("linf", (5, 5), 2)
        assert (5, 5) not in pts
        assert len(pts) == 24

    def test_centered_correctly(self):
        pts = set(ball_points("l1", (10, -3), 1))
        assert pts == {(11, -3), (9, -3), (10, -2), (10, -4)}


class TestHalfBall:
    def test_strict_excludes_medial_axis(self):
        pts = half_ball_points("linf", (0, 0), 2, (1, 0), strict=True)
        assert all(x > 0 for x, _ in pts)
        # half of 24 minus nothing extra: 2 columns x 5 rows = 10
        assert len(pts) == 10

    def test_nonstrict_includes_medial_axis(self):
        pts = half_ball_points("linf", (0, 0), 2, (1, 0), strict=False)
        assert any(x == 0 for x, _ in pts)
        assert len(pts) == 14  # 10 strict + 4 on the axis (excl. center)

    def test_diagonal_direction(self):
        pts = half_ball_points("l2", (0, 0), 3, (1, 1))
        assert all(x + y > 0 for x, y in pts)

    def test_zero_direction_rejected(self):
        with pytest.raises(ValueError):
            half_ball_points("l2", (0, 0), 2, (0, 0))

    def test_l2_half_count_near_half_area(self):
        r = 20
        pts = half_ball_points("l2", (0, 0), r, (0, 1), strict=True)
        import math

        assert abs(len(pts) - math.pi * r * r / 2) < 3 * r
