"""Tests for repro.radio.node, repro.radio.trace and repro.radio.run."""

import pytest

from repro.grid.torus import Torus
from repro.radio.engine import Engine
from repro.radio.messages import Envelope
from repro.radio.node import Context, FunctionProcess, NodeProcess, SilentProcess
from repro.radio.run import grade_outcome, run_broadcast
from repro.radio.trace import Trace


class Committer(NodeProcess):
    """Commits to a fixed value at start; used to exercise grading."""

    def __init__(self, value=None):
        self.value = value

    def committed_value(self):
        return self.value


class TestNodeProcess:
    def test_default_hooks_are_noops(self):
        p = NodeProcess()
        t = Torus.square(5, 1)
        ctx = Engine(t, {}).context_of((0, 0))
        p.on_start(ctx)
        p.on_receive(ctx, Envelope((1, 1), "x", 0, 0, 0))
        p.on_round(ctx)
        p.on_round_end(ctx)
        assert p.committed_value() is None
        assert not p.is_decided()

    def test_function_process_dispatch(self):
        calls = []
        p = FunctionProcess(
            on_start=lambda ctx: calls.append("start"),
            on_receive=lambda ctx, env: calls.append("recv"),
            on_round=lambda ctx: calls.append("round"),
        )
        t = Torus.square(5, 1)
        ctx = Engine(t, {}).context_of((0, 0))
        p.on_start(ctx)
        p.on_receive(ctx, Envelope((1, 1), "x", 0, 0, 0))
        p.on_round(ctx)
        assert calls == ["start", "recv", "round"]

    def test_silent_process(self):
        assert SilentProcess().committed_value() is None

    def test_context_properties(self):
        t = Torus.square(7, 2, metric="l2")
        eng = Engine(t, {})
        ctx = eng.context_of((3, 3))
        assert ctx.r == 2
        assert ctx.metric_name == "l2"
        assert ctx.pending == 0
        ctx.broadcast("x")
        assert ctx.pending == 1


class TestTrace:
    def test_counters(self):
        tr = Trace()
        env = Envelope((0, 0), "m", 0, 0, 0)
        tr.on_transmission(env, 8)
        tr.on_transmission(Envelope((0, 0), "m2", 1, 0, 1), 8)
        tr.on_transmission(Envelope((1, 1), "m3", 2, 1, 0), 8)
        tr.on_round_end(1)
        assert tr.transmissions == 3
        assert tr.deliveries == 24
        assert tr.transmissions_of((0, 0)) == 2
        assert tr.transmissions_of((9, 9)) == 0
        assert tr.busiest_round() == (0, 2)
        assert tr.summary()["transmitting_nodes"] == 2

    def test_busiest_round_empty(self):
        assert Trace().busiest_round() == (-1, 0)

    def test_event_recording_toggle(self):
        tr = Trace(record_events=True)
        tr.on_transmission(Envelope((0, 0), "m", 0, 0, 0), 4)
        tr.on_crash((1, 1), 2)
        kinds = [e.kind for e in tr.events]
        assert kinds == ["tx", "crash"]
        tr2 = Trace(record_events=False)
        tr2.on_transmission(Envelope((0, 0), "m", 0, 0, 0), 4)
        assert tr2.events == []


class TestGrading:
    def _result(self, processes):
        t = Torus.square(5, 1)
        return Engine(t, processes).run()

    def test_all_correct_committed(self):
        t = Torus.square(5, 1)
        procs = {n: Committer(1) for n in t.nodes()}
        res = Engine(t, procs).run()
        outcome = grade_outcome(res, 1, set(t.nodes()))
        assert outcome.achieved and outcome.safe and outcome.live
        assert outcome.summary()["undecided"] == 0

    def test_wrong_commit_breaks_safety(self):
        t = Torus.square(5, 1)
        procs = {n: Committer(1) for n in t.nodes()}
        procs[(2, 2)] = Committer(0)
        res = Engine(t, procs).run()
        outcome = grade_outcome(res, 1, set(t.nodes()))
        assert not outcome.safe
        assert outcome.wrong_commits == {(2, 2): 0}
        assert not outcome.achieved

    def test_undecided_breaks_liveness(self):
        t = Torus.square(5, 1)
        procs = {n: Committer(1) for n in t.nodes()}
        procs[(2, 2)] = Committer(None)
        res = Engine(t, procs).run()
        outcome = grade_outcome(res, 1, set(t.nodes()))
        assert outcome.safe and not outcome.live
        assert outcome.undecided == [(2, 2)]

    def test_faulty_nodes_excluded_from_grading(self):
        t = Torus.square(5, 1)
        procs = {n: Committer(1) for n in t.nodes()}
        procs[(2, 2)] = Committer(0)  # faulty liar
        res = Engine(t, procs).run()
        correct = set(t.nodes()) - {(2, 2)}
        outcome = grade_outcome(res, 1, correct)
        assert outcome.achieved

    def test_run_broadcast_rejects_correct_crasher(self):
        t = Torus.square(5, 1)
        with pytest.raises(ValueError, match="both correct and crashing"):
            run_broadcast(
                t,
                {},
                1,
                {(0, 0)},
                crash_round={(0, 0): 0},
            )

    def test_outcome_metrics(self):
        t = Torus.square(5, 1)

        class Announce(Committer):
            def on_start(self, ctx):
                ctx.broadcast("v")

        outcome = run_broadcast(
            t, {(0, 0): Announce(1)}, 1, {(0, 0)}
        )
        assert outcome.messages == 1
        assert outcome.rounds >= 1


class TestFunctionProcessRoundEndHook:
    def test_on_round_end_dispatch(self):
        calls = []
        p = FunctionProcess(
            on_round=lambda ctx: calls.append("round"),
            on_round_end=lambda ctx: calls.append("round_end"),
        )
        t = Torus.square(5, 1)
        ctx = Engine(t, {}).context_of((0, 0))
        p.on_round(ctx)
        p.on_round_end(ctx)
        assert calls == ["round", "round_end"]

    def test_on_round_end_default_noop(self):
        p = FunctionProcess(on_round=lambda ctx: None)
        t = Torus.square(5, 1)
        p.on_round_end(Engine(t, {}).context_of((0, 0)))

    def test_engine_fires_on_round_end_after_transmissions(self):
        """on_round_end sees the frame's receptions (immediate delivery)."""
        t = Torus.square(5, 1)
        log = []
        heard = []
        sender = FunctionProcess(on_start=lambda ctx: ctx.broadcast("m"))
        listener = FunctionProcess(
            on_receive=lambda ctx, env: heard.append(env.payload),
            on_round_end=lambda ctx: log.append(list(heard)),
        )
        Engine(t, {(1, 1): sender, (1, 2): listener}).run()
        assert log[0] == ["m"]


class TestTraceCrashCounting:
    def test_summary_counts_crashes(self):
        tr = Trace()
        tr.on_crash((1, 1), 2)
        tr.on_crash((2, 2), 0)
        assert tr.crashes == 2
        assert tr.summary()["crashes"] == 2

    def test_crash_counted_without_event_recording(self):
        tr = Trace(record_events=False)
        tr.on_crash((1, 1), 0)
        assert tr.crashes == 1
        assert tr.events == []

    def test_dead_from_start_announced_once(self):
        """A node dead from round 0 is skipped both in _start and in round
        0's frame; the trace must still count its crash exactly once."""
        t = Torus.square(5, 1)
        sender = FunctionProcess(on_start=lambda ctx: ctx.broadcast("x"))
        res = Engine(
            t, {(1, 1): sender}, crash_round={(2, 2): 0}
        ).run()
        assert res.trace.crashes == 1
        assert res.trace.summary()["crashes"] == 1

    def test_mid_run_crash_counted_once(self):
        t = Torus.square(5, 1)

        class Chatter(NodeProcess):
            def on_round(self, ctx):
                ctx.broadcast(ctx.round)

        res = Engine(
            t,
            {(0, 0): Chatter()},
            crash_round={(3, 3): 2},
            max_rounds=6,
        ).run()
        assert res.trace.crashes == 1


class TestTraceEdges:
    def test_empty_trace_summary(self):
        # a trace that saw no events: zero aggregates, sentinel busiest
        trace = Trace()
        assert trace.summary() == {
            "rounds": 0,
            "transmissions": 0,
            "deliveries": 0,
            "transmitting_nodes": 0,
            "crashes": 0,
        }
        assert trace.busiest_round() == (-1, 0)
        assert trace.transmissions_of((0, 0)) == 0

    def test_trace_of_silent_network(self):
        # every process silent: rounds advance to quiescence detection,
        # but no transmissions or deliveries are ever logged
        t = Torus.square(3, 1)
        procs = {n: SilentProcess() for n in t.nodes()}
        res = Engine(t, procs, max_rounds=5).run()
        assert res.quiescent
        assert res.trace.transmissions == 0
        assert res.trace.deliveries == 0
        assert res.trace.summary()["transmitting_nodes"] == 0
