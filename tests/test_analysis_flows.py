"""Tests for repro.analysis.flows, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.flows import (
    local_vertex_connectivity,
    max_vertex_disjoint_paths,
    vertex_disjoint_paths,
)
from repro.grid.graphs import adjacency_map
from repro.grid.torus import Torus


def undirected_adj(edges):
    adj = {}
    for u, v in edges:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
    return {k: tuple(vs) for k, vs in adj.items()}


class TestKnownGraphs:
    def test_path_graph(self):
        adj = undirected_adj([(0, 1), (1, 2), (2, 3)])
        assert max_vertex_disjoint_paths(adj, 0, 3) == 1

    def test_direct_edge_counts(self):
        adj = undirected_adj([(0, 1)])
        assert max_vertex_disjoint_paths(adj, 0, 1) == 1

    def test_cycle(self):
        adj = undirected_adj([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert max_vertex_disjoint_paths(adj, 0, 2) == 2

    def test_complete_graph(self):
        n = 6
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        adj = undirected_adj(edges)
        # direct edge + (n-2) one-relay paths
        assert max_vertex_disjoint_paths(adj, 0, 1) == n - 1

    def test_disconnected(self):
        adj = undirected_adj([(0, 1), (2, 3)])
        assert max_vertex_disjoint_paths(adj, 0, 3) == 0

    def test_bottleneck(self):
        # two diamonds joined by one cut vertex
        adj = undirected_adj(
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5), (4, 6), (5, 6)]
        )
        assert max_vertex_disjoint_paths(adj, 0, 6) == 1

    def test_same_node_raises(self):
        with pytest.raises(ValueError):
            max_vertex_disjoint_paths({0: (1,)}, 0, 0)

    def test_cap_limits(self):
        n = 6
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        adj = undirected_adj(edges)
        assert max_vertex_disjoint_paths(adj, 0, 1, cap=2) == 2

    def test_allowed_restriction(self):
        adj = undirected_adj([(0, 1), (1, 2), (0, 3), (3, 2)])
        assert max_vertex_disjoint_paths(adj, 0, 2) == 2
        assert (
            max_vertex_disjoint_paths(adj, 0, 2, allowed={0, 1, 2}) == 1
        )
        assert max_vertex_disjoint_paths(adj, 0, 2, allowed={0, 2}) == 0
        # endpoints outside the allowed set: no paths
        assert max_vertex_disjoint_paths(adj, 0, 2, allowed={1}) == 0


class TestAgainstNetworkx:
    @given(st.integers(min_value=0, max_value=100))
    def test_random_graphs(self, seed):
        g = nx.gnp_random_graph(10, 0.4, seed=seed)
        if g.number_of_edges() == 0:
            return
        adj = {n: tuple(g.neighbors(n)) for n in g.nodes}
        nodes = sorted(g.nodes)
        s, t = nodes[0], nodes[-1]
        expected = nx.node_connectivity(g, s, t) if s in g and t in g else 0
        assert local_vertex_connectivity(adj, s, t) == expected

    def test_radio_graph_menger(self):
        torus = Torus.square(7, 1)
        adj = adjacency_map(torus)
        g = nx.Graph()
        for u, nbrs in adj.items():
            for v in nbrs:
                g.add_edge(u, v)
        assert local_vertex_connectivity(
            adj, (0, 0), (3, 3)
        ) == nx.node_connectivity(g, (0, 0), (3, 3))


class TestPathMaterialization:
    def test_paths_are_disjoint_and_valid(self):
        torus = Torus.square(9, 1)
        adj = adjacency_map(torus)
        paths = vertex_disjoint_paths(adj, (0, 0), (4, 4))
        assert len(paths) == max_vertex_disjoint_paths(adj, (0, 0), (4, 4))
        seen = set()
        for path in paths:
            assert path[0] == (0, 0) and path[-1] == (4, 4)
            for u, v in zip(path, path[1:]):
                assert v in adj[u]
            for internal in path[1:-1]:
                assert internal not in seen
                seen.add(internal)

    def test_paths_respect_allowed(self):
        adj = undirected_adj([(0, 1), (1, 2), (0, 3), (3, 2)])
        paths = vertex_disjoint_paths(adj, 0, 2, allowed={0, 1, 2})
        assert paths == [[0, 1, 2]]

    def test_empty_when_endpoint_excluded(self):
        adj = undirected_adj([(0, 1)])
        assert vertex_disjoint_paths(adj, 0, 1, allowed={0}) == []
