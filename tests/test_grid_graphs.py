"""Tests for repro.grid.graphs (adjacency exports, components)."""

from repro.grid.graphs import (
    adjacency_map,
    component_of,
    connected_components,
    induced_adjacency,
    remove_nodes,
)
from repro.grid.torus import Torus


class TestAdjacencyMap:
    def test_full_map(self):
        t = Torus.square(5, 1)
        adj = adjacency_map(t)
        assert len(adj) == 25
        assert all(len(nbrs) == 8 for nbrs in adj.values())

    def test_symmetry(self):
        t = Torus.square(5, 2)
        adj = adjacency_map(t)
        for u, nbrs in adj.items():
            for v in nbrs:
                assert u in adj[v]


class TestInducedAdjacency:
    def test_only_internal_edges(self):
        t = Torus.square(7, 1)
        sub = induced_adjacency(t, [(0, 0), (1, 0), (3, 3)])
        assert set(sub) == {(0, 0), (1, 0), (3, 3)}
        assert sub[(0, 0)] == ((1, 0),)
        assert sub[(3, 3)] == ()

    def test_canonicalizes(self):
        t = Torus.square(5, 1)
        sub = induced_adjacency(t, [(5, 5), (0, 0)])  # same node twice
        assert set(sub) == {(0, 0)}


class TestRemoveNodes:
    def test_removal(self):
        adj = {1: (2, 3), 2: (1,), 3: (1,)}
        out = remove_nodes(adj, [2])
        assert set(out) == {1, 3}
        assert out[1] == (3,)


class TestComponents:
    def test_torus_connected(self):
        t = Torus.square(7, 1)
        comps = connected_components(adjacency_map(t))
        assert len(comps) == 1
        assert len(comps[0]) == 49

    def test_strip_disconnects_two_strips(self):
        t = Torus.square(9, 1)
        # two full-height single-column cuts at x=2 and x=6
        cut = {(2, y) for y in range(9)} | {(6, y) for y in range(9)}
        adj = remove_nodes(adjacency_map(t), cut)
        comps = connected_components(adj)
        assert len(comps) == 2
        sizes = sorted(len(c) for c in comps)
        assert sum(sizes) == 81 - 18

    def test_component_of(self):
        adj = {1: (2,), 2: (1,), 3: ()}
        assert component_of(adj, 1) == {1, 2}
        assert component_of(adj, 3) == {3}

    def test_component_of_missing(self):
        import pytest

        with pytest.raises(KeyError):
            component_of({}, 1)

    def test_largest_first(self):
        adj = {1: (), 2: (3,), 3: (2,)}
        comps = connected_components(adj)
        assert len(comps[0]) == 2
