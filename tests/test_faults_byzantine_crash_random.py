"""Tests for repro.faults.byzantine, .crash and .random_faults."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.faults.byzantine import (
    BYZANTINE_STRATEGIES,
    DuplicitousByzantine,
    EagerLiarByzantine,
    FabricatingByzantine,
    RandomNoiseByzantine,
    SilentByzantine,
    make_byzantine,
)
from repro.faults.crash import dead_from_start, staggered_crashes
from repro.faults.placement import is_valid_placement
from repro.faults.random_faults import iid_failures, random_bounded_placement
from repro.grid.torus import Torus
from repro.protocols.base import CommittedMsg, HeardMsg
from repro.radio.engine import Engine
from repro.radio.node import FunctionProcess


def capture_broadcasts(torus, byz_node, process, rounds=3):
    """Run just the Byzantine process and collect what a neighbor hears."""
    heard = []
    sink = FunctionProcess(on_receive=lambda ctx, env: heard.append(env.payload))
    nb = torus.neighbors(byz_node)[0]
    eng = Engine(
        torus, {byz_node: process, nb: sink}, max_rounds=rounds
    )
    eng.run()
    return heard


class TestStrategies:
    def test_silent_sends_nothing(self):
        t = Torus.square(7, 1)
        assert capture_broadcasts(t, (3, 3), SilentByzantine()) == []

    def test_liar_announces_wrong_once(self):
        t = Torus.square(7, 1)
        heard = capture_broadcasts(t, (3, 3), EagerLiarByzantine(0))
        assert heard == [CommittedMsg(0)]

    def test_duplicitous_sends_both_in_order(self):
        t = Torus.square(7, 1)
        heard = capture_broadcasts(t, (3, 3), DuplicitousByzantine(0, 1))
        assert heard == [CommittedMsg(0), CommittedMsg(1)]

    def test_fabricator_frames_neighbors(self):
        t = Torus.square(9, 1)
        heard = capture_broadcasts(t, (4, 4), FabricatingByzantine(0))
        committed = [m for m in heard if isinstance(m, CommittedMsg)]
        heards = [m for m in heard if isinstance(m, HeardMsg)]
        assert committed == [CommittedMsg(0)]
        assert len(heards) >= 8  # frames at least its direct ring
        assert all(m.value == 0 for m in heards)

    def test_fabricator_chains_are_plausible(self):
        """Every fabricated two-relay chain must survive honest adjacency
        validation (that is the point of the strategy)."""
        from repro.geometry.metrics import LINF

        t = Torus.square(13, 2)
        me = (6, 6)
        heard = capture_broadcasts(t, me, FabricatingByzantine(0))
        for m in heard:
            if isinstance(m, HeardMsg) and m.relays:
                relay = m.relays[0]
                assert LINF.within(me, relay, 2)
                assert LINF.within(relay, m.origin, 2)

    def test_fabricator_shallow_mode(self):
        t = Torus.square(9, 1)
        heard = capture_broadcasts(
            t, (4, 4), FabricatingByzantine(0, deep_fabrication=False)
        )
        assert all(
            not (isinstance(m, HeardMsg) and m.relays) for m in heard
        )

    def test_noise_deterministic(self):
        t = Torus.square(7, 1)
        a = capture_broadcasts(t, (3, 3), RandomNoiseByzantine(0, seed=5))
        b = capture_broadcasts(t, (3, 3), RandomNoiseByzantine(0, seed=5))
        assert a == b

    def test_noise_rate_validation(self):
        with pytest.raises(ConfigurationError):
            RandomNoiseByzantine(0, rate=1.5)

    def test_registry_and_factory(self):
        assert set(BYZANTINE_STRATEGIES) == {
            "silent",
            "liar",
            "duplicitous",
            "fabricator",
            "noise",
        }
        for name in BYZANTINE_STRATEGIES:
            proc = make_byzantine(name, 0)
            assert proc is not None

    def test_factory_unknown(self):
        with pytest.raises(ConfigurationError):
            make_byzantine("teleport", 0)


class TestCrashSchedules:
    def test_dead_from_start(self):
        sched = dead_from_start([(0, 0), (1, 1)])
        assert sched == {(0, 0): 0, (1, 1): 0}

    def test_staggered_in_range(self):
        sched = staggered_crashes([(i, 0) for i in range(20)], 5)
        assert all(0 <= r <= 5 for r in sched.values())

    def test_staggered_deterministic(self):
        nodes = [(i, 0) for i in range(10)]
        a = staggered_crashes(nodes, 7, random.Random(3))
        b = staggered_crashes(nodes, 7, random.Random(3))
        assert a == b

    def test_staggered_invalid(self):
        with pytest.raises(ValueError):
            staggered_crashes([(0, 0)], -1)


class TestRandomFaults:
    def test_iid_protects_source(self):
        t = Torus.square(9, 1)
        faults = iid_failures(t, 1.0, random.Random(0))
        assert (0, 0) not in faults
        assert len(faults) == 80

    def test_iid_probability_zero(self):
        t = Torus.square(9, 1)
        assert iid_failures(t, 0.0, random.Random(0)) == set()

    def test_iid_invalid_probability(self):
        with pytest.raises(ValueError):
            iid_failures(Torus.square(9, 1), -0.1)

    def test_bounded_placement_valid(self):
        t = Torus.square(9, 1)
        for seed in range(3):
            faults = random_bounded_placement(t, 2, random.Random(seed))
            assert is_valid_placement(faults, 2, 1, topology=t)
            assert (0, 0) not in faults

    def test_bounded_placement_target(self):
        t = Torus.square(11, 1)
        faults = random_bounded_placement(
            t, 3, random.Random(0), target_count=5
        )
        assert len(faults) == 5
