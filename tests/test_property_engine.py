"""Property-based tests of the channel model invariants.

These are the assumptions every proof in the paper rests on; we check
them under randomized workloads, not just hand-picked cases:

- per-sender FIFO: any receiver sees any sender's messages in
  transmission order;
- atomicity: each transmission reaches *all* live in-range nodes or (for
  crashed-before-slot senders) none;
- total order consistency: any two receivers that both hear two
  transmissions see them in the same global order;
- determinism: identical configurations yield identical traces.
"""

import random
from typing import Dict, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.torus import Torus
from repro.radio.engine import Engine
from repro.radio.node import FunctionProcess, NodeProcess


class ScriptedSender(NodeProcess):
    """Broadcasts a scripted list of (round, payload) pairs."""

    def __init__(self, script: List[Tuple[int, str]]) -> None:
        self.script = sorted(script)

    def on_round(self, ctx) -> None:
        for rnd, payload in self.script:
            if rnd == ctx.round:
                ctx.broadcast(payload)


def observer(log: List) -> FunctionProcess:
    return FunctionProcess(
        on_receive=lambda ctx, env: log.append(
            (ctx.node, env.sender, env.payload, env.seq)
        )
    )


workloads = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),  # round
        st.text(alphabet="abc", min_size=1, max_size=3),  # payload
    ),
    min_size=0,
    max_size=8,
)


class TestChannelInvariants:
    @given(workloads, workloads)
    @settings(max_examples=20)
    def test_per_sender_fifo(self, script_a, script_b):
        torus = Torus.square(5, 1)
        log: List = []
        senders = {(1, 1): ScriptedSender(script_a), (2, 2): ScriptedSender(script_b)}
        procs = dict(senders)
        procs[(1, 2)] = observer(log)  # neighbor of both senders
        Engine(torus, procs, max_rounds=12, quiescent_after_idle_rounds=6).run()
        for sender_node, sender in senders.items():
            expected = [
                p for _, p in sorted(sender.script, key=lambda e: e[0])
            ]
            # payload multiset order per round is the queue order; compare
            # the received subsequence for this sender
            received = [
                payload
                for _, snd, payload, _ in log
                if snd == sender_node
            ]
            assert received == expected

    @given(workloads)
    @settings(max_examples=20)
    def test_atomic_full_neighborhood(self, script):
        torus = Torus.square(5, 1)
        logs: Dict = {}
        procs: Dict = {(2, 2): ScriptedSender(script)}
        for nb in torus.neighbors((2, 2)):
            logs[nb] = []
            procs[nb] = observer(logs[nb])
        Engine(torus, procs, max_rounds=12, quiescent_after_idle_rounds=6).run()
        payload_seqs = [
            [(payload, seq) for _, _, payload, seq in log]
            for log in logs.values()
        ]
        # every neighbor observed exactly the same transmissions
        assert all(seq == payload_seqs[0] for seq in payload_seqs)

    @given(workloads, workloads, st.integers(min_value=0, max_value=3))
    @settings(max_examples=15)
    def test_global_order_agreement(self, script_a, script_b, crash_round):
        """Two receivers never disagree on the relative order of the
        transmissions they both heard -- even with a crashing third
        party."""
        torus = Torus.square(5, 1)
        log1: List = []
        log2: List = []
        procs = {
            (1, 1): ScriptedSender(script_a),
            (2, 2): ScriptedSender(script_b),
            (1, 2): observer(log1),
            (2, 1): observer(log2),
        }
        Engine(
            torus,
            procs,
            crash_round={(0, 0): crash_round},
            max_rounds=12,
            quiescent_after_idle_rounds=6,
        ).run()
        seqs1 = [seq for _, _, _, seq in log1]
        seqs2 = [seq for _, _, _, seq in log2]
        common = set(seqs1) & set(seqs2)
        order1 = [s for s in seqs1 if s in common]
        order2 = [s for s in seqs2 if s in common]
        assert order1 == order2

    @given(workloads, st.integers(min_value=0, max_value=100))
    @settings(max_examples=15)
    def test_determinism(self, script, seed):
        def run_once():
            torus = Torus.square(5, 1)
            log: List = []
            procs = {
                (1, 1): ScriptedSender(list(script)),
                (1, 2): observer(log),
            }
            res = Engine(torus, procs, max_rounds=12, quiescent_after_idle_rounds=6).run()
            return log, res.trace.transmissions, res.rounds

        assert run_once() == run_once()

    @given(
        workloads,
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=15)
    def test_crashed_sender_transmits_nothing_after_crash(
        self, script, crash_at
    ):
        torus = Torus.square(5, 1)
        log: List = []
        procs = {
            (1, 1): ScriptedSender(script),
            (1, 2): observer(log),
        }
        Engine(
            torus,
            procs,
            crash_round={(1, 1): crash_at},
            max_rounds=12,
            quiescent_after_idle_rounds=6,
        ).run()
        # everything received must have been sent strictly before the crash
        for _, sender, payload, _ in log:
            assert sender == (1, 1)
        received = {p for _, _, p, _ in log}
        late = {p for rnd, p in script if rnd >= crash_at}
        early = {p for rnd, p in script if rnd < crash_at}
        assert received <= early | (late & early)
