"""Regression tests for the true positives the deep lint passes found.

Each test pins a fix applied when ``repro lint --deep`` first ran over
the tree: crash schedules and neighborhood counts built in sorted order
(so nothing downstream depends on set-iteration order, i.e. on the
interpreter's hash seeding), process maps with canonical insertion
order, and runtime registries frozen so a parent-process mutation can
never diverge from a forked worker's snapshot.
"""

import pytest

from repro.adversary.moves import MOVE_KERNELS
from repro.faults.byzantine import BYZANTINE_STRATEGIES
from repro.faults.crash import dead_from_start, staggered_crashes
from repro.faults.placement import fault_counts_per_nbd
from repro.geometry.symmetry import DIHEDRAL_TRANSFORMS
from repro.grid.torus import Torus
from repro.protocols.registry import PROTOCOLS, correct_process_map


FAULTY = {(3, 1), (0, 0), (2, 2), (1, 3)}


class TestSortedSchedules:
    def test_dead_from_start_order_is_sorted(self):
        schedule = dead_from_start(FAULTY)
        assert list(schedule) == sorted(FAULTY)

    def test_staggered_order_is_sorted(self):
        import random

        schedule = staggered_crashes(FAULTY, 10, random.Random(7))
        assert list(schedule) == sorted(FAULTY)

    def test_staggered_draws_ignore_input_order(self):
        """The round a node crashes at depends on the node, not on where
        it sat in the input iterable -- sets and (reordered) lists give
        identical schedules for the same rng seed."""
        import random

        a = staggered_crashes(FAULTY, 10, random.Random(7))
        b = staggered_crashes(
            sorted(FAULTY, reverse=True), 10, random.Random(7)
        )
        assert a == b

    def test_fault_counts_insertion_order_is_canonical(self):
        a = fault_counts_per_nbd(FAULTY, 1)
        b = fault_counts_per_nbd(sorted(FAULTY, reverse=True), 1)
        assert a == b
        assert list(a) == list(b)


class TestProcessMapOrder:
    def test_correct_process_map_is_sorted(self):
        topo = Torus(6, 6, 1)
        nodes = {(5, 5), (0, 0), (3, 2), (1, 4)}
        processes = correct_process_map(
            topo, "bv-two-hop", 1, (0, 0), 42, nodes
        )
        assert list(processes) == sorted(
            topo.canonical(n) for n in nodes
        )


class TestFrozenRegistries:
    @pytest.mark.parametrize(
        "registry",
        [PROTOCOLS, BYZANTINE_STRATEGIES, DIHEDRAL_TRANSFORMS, MOVE_KERNELS],
        ids=["protocols", "byzantine", "dihedral", "move-kernels"],
    )
    def test_registry_rejects_mutation(self, registry):
        assert len(registry) > 0
        with pytest.raises(TypeError):
            registry["rogue"] = object()
