"""Shared fixtures and hypothesis settings for the repro test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

# CI-friendly profile: bounded examples, no deadline (simulation-backed
# properties vary in runtime), suppress the fixture health check (we pass
# function-scoped fixtures into properties deliberately and safely).
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)
