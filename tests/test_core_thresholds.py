"""Tests for repro.core.thresholds (every bound in the paper)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.thresholds import (
    byzantine_linf_max_t,
    byzantine_linf_threshold,
    cpa_best_known_max_t,
    cpa_linf_bound,
    cpa_linf_max_t,
    crash_linf_max_t,
    crash_linf_threshold,
    koo_cpa_l2_bound,
    koo_cpa_linf_bound,
    koo_impossibility_bound,
    l2_byzantine_achievable_estimate,
    l2_byzantine_impossible_estimate,
    l2_crash_achievable_estimate,
    l2_crash_impossible_estimate,
    linf_nbd_size,
    threshold_table,
)

radii = st.integers(min_value=1, max_value=200)


class TestExactThresholds:
    @given(radii)
    def test_byzantine_threshold_formula(self, r):
        assert byzantine_linf_threshold(r) == r * (2 * r + 1) / 2

    @given(radii)
    def test_max_t_is_largest_below_threshold(self, r):
        t = byzantine_linf_max_t(r)
        assert t < byzantine_linf_threshold(r)
        assert t + 1 >= byzantine_linf_threshold(r)

    @given(radii)
    def test_achievability_meets_impossibility(self, r):
        """Theorem 1 matches Koo's bound exactly: every integer t is on
        one side or the other, with no gap."""
        assert byzantine_linf_max_t(r) + 1 == koo_impossibility_bound(r)

    @given(radii)
    def test_koo_bound_is_ceiling(self, r):
        assert koo_impossibility_bound(r) == math.ceil(r * (2 * r + 1) / 2)

    @given(radii)
    def test_crash_threshold_exact(self, r):
        assert crash_linf_threshold(r) == r * (2 * r + 1)
        assert crash_linf_max_t(r) == r * (2 * r + 1) - 1

    @given(radii)
    def test_crash_is_twice_byzantine(self, r):
        assert crash_linf_threshold(r) == 2 * byzantine_linf_threshold(r)

    def test_known_values(self):
        assert byzantine_linf_max_t(1) == 1
        assert koo_impossibility_bound(1) == 2
        assert byzantine_linf_max_t(2) == 4
        assert koo_impossibility_bound(2) == 5
        assert crash_linf_threshold(2) == 10


class TestFractionsOfNeighborhood:
    @given(radii)
    def test_byzantine_near_one_fourth(self, r):
        """The abstract: 'slightly less than one-fourth fraction'."""
        frac = byzantine_linf_threshold(r) / linf_nbd_size(r)
        assert frac < 0.25
        # the fraction climbs monotonically toward 1/4; it first clears
        # 0.24 at r = 12 (r = 10 gives 105/440 ~ 0.2386)
        if r >= 12:
            assert frac > 0.24

    @given(radii)
    def test_crash_near_one_half(self, r):
        frac = crash_linf_threshold(r) / linf_nbd_size(r)
        assert frac < 0.5
        if r >= 10:
            assert frac > 0.47
        if r >= 50:
            assert frac > 0.49


class TestCPABounds:
    @given(radii)
    def test_cpa_formulas(self, r):
        assert cpa_linf_bound(r) == pytest.approx(2 * r * r / 3)
        assert cpa_linf_max_t(r) == (2 * r * r) // 3

    @given(st.integers(min_value=10, max_value=500))
    def test_theorem6_dominates_koo_asymptotically(self, r):
        """The paper's claim: 2r^2/3 dominates Koo's bound for all
        sufficiently large r (numerically: from r=10 on)."""
        assert cpa_linf_bound(r) > koo_cpa_linf_bound(r)

    def test_koo_better_for_small_r(self):
        """... and Koo's bound wins for small r (the crossover)."""
        for r in (1, 2, 3, 4):
            assert math.ceil(koo_cpa_linf_bound(r)) - 1 >= cpa_linf_max_t(r)

    @given(radii)
    def test_best_known_at_least_each(self, r):
        best = cpa_best_known_max_t(r)
        assert best >= cpa_linf_max_t(r)
        assert best >= math.ceil(koo_cpa_linf_bound(r)) - 1

    @given(radii)
    def test_cpa_below_exact_threshold(self, r):
        """The simple protocol's certified budget never exceeds the true
        threshold."""
        assert cpa_best_known_max_t(r) <= byzantine_linf_max_t(r)

    @given(radii)
    def test_koo_l2_below_linf(self, r):
        assert koo_cpa_l2_bound(r) < koo_cpa_linf_bound(r)


class TestL2Estimates:
    @given(radii)
    def test_l2_ordering(self, r):
        assert (
            l2_byzantine_achievable_estimate(r)
            < l2_byzantine_impossible_estimate(r)
            <= l2_crash_achievable_estimate(r)
            < l2_crash_impossible_estimate(r)
        )

    @given(radii)
    def test_l2_crash_is_twice_byzantine(self, r):
        assert l2_crash_achievable_estimate(r) == pytest.approx(
            2 * l2_byzantine_achievable_estimate(r)
        )
        assert l2_crash_impossible_estimate(r) == pytest.approx(
            2 * l2_byzantine_impossible_estimate(r)
        )

    def test_l2_fractions_of_disc(self):
        """0.23 pi r^2 is ~23% of the disc population; 0.3 is ~30%."""
        r = 100
        import math as m

        disc = m.pi * r * r
        assert l2_byzantine_achievable_estimate(r) / disc == pytest.approx(0.23)
        assert l2_byzantine_impossible_estimate(r) / disc == pytest.approx(0.30)


class TestValidationAndTable:
    def test_invalid_radius(self):
        for fn in (
            byzantine_linf_threshold,
            koo_impossibility_bound,
            crash_linf_threshold,
            cpa_linf_bound,
            linf_nbd_size,
        ):
            with pytest.raises(ValueError):
                fn(0)

    def test_threshold_table_shape(self):
        rows = threshold_table([1, 2, 3])
        assert len(rows) == 3
        assert rows[0]["r"] == 1
        assert rows[1]["byz_linf_max_t"] == 4
        assert {"koo_impossibility", "crash_linf_threshold"} <= set(rows[0])
