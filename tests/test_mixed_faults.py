"""Mixed Byzantine + crash-stop fault scenarios.

The locally-bounded budget ``t`` counts every fault; crash faults are
strictly weaker than Byzantine ones.  Hence any guarantee proved for
``t`` Byzantine faults must hold under every mix at the same budget."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.thresholds import byzantine_linf_max_t, koo_impossibility_bound
from repro.errors import ConfigurationError
from repro.experiments.scenarios import mixed_broadcast_scenario


class TestMixedScenarioBuilder:
    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            mixed_broadcast_scenario(r=1, t=1, byzantine_fraction=1.5)

    def test_partition_of_faults(self):
        sc = mixed_broadcast_scenario(r=1, t=1, byzantine_fraction=0.5)
        byz = set(sc.byzantine_processes)
        crash = set(sc.crash_round)
        assert byz and crash
        assert not (byz & crash)

    def test_extreme_fractions(self):
        all_byz = mixed_broadcast_scenario(r=1, t=1, byzantine_fraction=1.0)
        assert not all_byz.crash_round
        all_crash = mixed_broadcast_scenario(r=1, t=1, byzantine_fraction=0.0)
        assert not all_crash.byzantine_processes

    def test_budget_respected(self):
        sc = mixed_broadcast_scenario(r=1, t=1, byzantine_fraction=0.3)
        sc.validate()


class TestMixedThresholdBehavior:
    @given(fraction=st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]))
    @settings(max_examples=5)
    def test_below_threshold_achieves_any_mix(self, fraction):
        sc = mixed_broadcast_scenario(
            r=1,
            t=byzantine_linf_max_t(1),
            byzantine_fraction=fraction,
            strategy="fabricator",
        )
        sc.validate()
        out = sc.run()
        assert out.achieved, (fraction, out.summary())

    def test_at_bound_still_blocked_even_all_crash(self):
        """Crash faults alone realize the Byzantine impossibility: the
        blocking argument is a vertex cut, not deception."""
        sc = mixed_broadcast_scenario(
            r=1,
            t=koo_impossibility_bound(1),
            byzantine_fraction=0.0,
        )
        sc.validate()
        out = sc.run()
        assert out.safe and not out.live

    @given(
        fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=8)
    def test_safety_under_any_mix(self, fraction, seed):
        sc = mixed_broadcast_scenario(
            r=1,
            t=2,
            byzantine_fraction=fraction,
            strategy="liar",
            placement="random",
            seed=seed,
        )
        out = sc.run()
        assert out.safe