"""Self-check: the shipped ``src/repro`` tree must lint clean, and the
``repro lint`` CLI must honor its exit-code and flag contract."""

import json
import os

import pytest

from repro.cli import main
from repro.lint import lint_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def test_shipped_tree_is_clean():
    report = lint_paths([SRC_REPRO])
    assert report.findings == [], "\n".join(
        f.format() for f in report.findings
    )
    assert report.parse_failures == []
    assert report.exit_code == 0
    # the whole package was actually scanned, not a sliver of it
    assert report.files_checked > 50


def test_cli_lint_clean_exit_zero(capsys):
    assert main(["lint", SRC_REPRO]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_lint_json_report(capsys):
    assert main(["lint", SRC_REPRO, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["clean"] is True
    assert payload["summary"]["errors"] == 0
    assert set(payload["summary"]["rules"]) >= {
        "no-unseeded-rng",
        "no-envelope-forgery",
        "frozen-payloads",
        "ordered-iteration",
        "registry-conformance",
        "no-received-mutation",
    }


def test_cli_lint_default_path_is_installed_package(capsys):
    assert main(["lint"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "no-unseeded-rng" in out
    assert "registry-conformance" in out


def test_cli_violation_exit_one(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("import random\nx = random.random()\n")
    assert main(["lint", str(tmp_path)]) == 1
    assert "error[no-unseeded-rng]" in capsys.readouterr().out


def test_cli_parse_failure_exit_two(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("def broken(:\n")
    assert main(["lint", str(tmp_path)]) == 2


def test_cli_unknown_rule_exit_two(capsys):
    assert main(["lint", SRC_REPRO, "--rules", "no-such-rule"]) == 2
    assert "no-such-rule" in capsys.readouterr().err


def test_cli_missing_path_exit_two(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nope")]) == 2
    assert capsys.readouterr().err


def test_cli_rule_subset(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("import random\nx = random.random()\n")
    # a subset that excludes the offending rule reports clean
    assert main(["lint", str(tmp_path), "--rules", "frozen-payloads"]) == 0
