"""Regression: malformed (unhashable) Byzantine payload values.

Every protocol tallies ``COMMITTED`` / ``HEARD`` announcements in dicts
keyed by the announced value.  A Byzantine process is free to announce
*anything* -- including unhashable values like lists -- and before the
hardening pass a single such announcement raised ``TypeError`` deep in
the tally bookkeeping and killed the entire run.  The fix drops
malformed values at the receive boundary (:func:`hashable_value` in
``repro.protocols.base``), treated exactly like any other garbage
transmission.

Two subtleties are pinned here beyond "does not crash":

- a dropped value must NOT consume the sender's first-announcement
  slot: CPA's duplicity rule keeps only the first ``COMMITTED`` per
  sender, and a malformed first announcement must not shadow a later
  well-formed one;
- the fastpath Byzantine kernel must agree byte-for-byte with the
  hardened reference semantics (the differential check at the bottom).
"""

from __future__ import annotations

import pytest

from repro.faults.byzantine import EagerLiarByzantine, FabricatingByzantine
from repro.grid.torus import Torus
from repro.protocols.base import CommittedMsg, hashable_value
from repro.protocols.cpa import CPAProtocol
from repro.radio.messages import Envelope


class _FakeCtx:
    """Minimal Context stand-in for direct protocol-node unit tests."""

    def __init__(self, node=(0, 0)):
        self.node = node
        self.round = 0
        self.sent = []
        self.halted = False

    def localize(self, other):
        return tuple(other)

    def broadcast(self, payload):
        self.sent.append(payload)

    def halt(self):
        self.halted = True


def _cmt(sender, value, seq=0):
    return Envelope(sender=sender, payload=CommittedMsg(value), seq=seq,
                    round=0, slot=0)


def test_hashable_value_helper():
    assert hashable_value(1)
    assert hashable_value(None)
    assert hashable_value("v")
    assert hashable_value((1, 2))
    assert not hashable_value([1, 2])
    assert not hashable_value({"a": 1})
    assert not hashable_value({1, 2})


class TestCPAUnitSemantics:
    def test_unhashable_announcement_is_dropped(self):
        node = CPAProtocol(t=1, source=(5, 5))
        ctx = _FakeCtx()
        node.on_receive(ctx, _cmt((1, 0), [1, 2]))
        assert node._tally == {}
        assert node._announced == {}
        assert node.committed_value() is None

    def test_dropped_value_does_not_consume_first_slot(self):
        """A malformed first announcement must not shadow the sender's
        later well-formed one -- the drop happens *before* the
        first-announcement bookkeeping."""
        node = CPAProtocol(t=1, source=(5, 5))
        ctx = _FakeCtx()
        node.on_receive(ctx, _cmt((1, 0), [1, 2], seq=0))  # dropped
        node.on_receive(ctx, _cmt((1, 0), 7, seq=1))       # counts
        assert node._tally == {7: 1}
        node.on_receive(ctx, _cmt((0, 1), 7, seq=2))       # second voucher
        assert node.committed_value() == 7
        assert ctx.halted

    def test_duplicity_detection_starts_at_first_wellformed(self):
        """With the malformed announcement gone, the first *well-formed*
        value is the one later announcements are checked against."""
        node = CPAProtocol(t=2, source=(5, 5))
        ctx = _FakeCtx()
        node.on_receive(ctx, _cmt((1, 0), {"x": 1}, seq=0))  # dropped
        node.on_receive(ctx, _cmt((1, 0), 7, seq=1))         # first counts
        node.on_receive(ctx, _cmt((1, 0), 8, seq=2))         # duplicity
        assert node._tally == {7: 1}
        assert (1, 0) in node.detected_duplicity


#: each protocol's evidence maps are keyed by announced value; all four
#: must survive a liar announcing a list (and the bv protocols a
#: fabricator relaying one)
PROTOCOLS = ("cpa", "crash-flood", "bv-two-hop", "bv-indirect", "bv-earmarked")


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_unhashable_liar_does_not_kill_the_run(protocol):
    from repro.experiments.scenarios import BroadcastScenario

    sc = BroadcastScenario(
        topology=Torus.square(9, 1),
        protocol=protocol,
        t=1,
        byzantine_processes={(1, 1): EagerLiarByzantine([1, 2, 3])},
        max_rounds=60,
    )
    out = sc.run()  # regression: raised TypeError before the hardening
    assert out.achieved
    committed = {
        p.committed_value()
        for n, p in out.result.processes.items()
        if n in sc.correct_nodes
    }
    assert committed == {1}


@pytest.mark.parametrize("protocol", ("bv-two-hop", "bv-indirect", "bv-earmarked"))
def test_unhashable_fabricator_does_not_kill_the_run(protocol):
    """Fabricators additionally flood relayed ``HEARD`` evidence; the
    bv evidence registries must drop the malformed value there too."""
    from repro.experiments.scenarios import BroadcastScenario

    sc = BroadcastScenario(
        topology=Torus.square(9, 1),
        protocol=protocol,
        t=1,
        byzantine_processes={(1, 1): FabricatingByzantine(["junk"])},
        max_rounds=60,
    )
    out = sc.run()
    assert out.achieved


def test_unhashable_liar_cross_engine():
    """The fastpath CPA kernel models a malformed announcement as a
    junk transmission (counters only, no tally bucket) -- which must be
    observably identical to the reference drop."""
    pytest.importorskip("numpy")
    from repro.experiments.scenarios import BroadcastScenario
    from repro.obs.export import canonical_json
    from repro.obs.metrics import RunMetrics

    def run(engine):
        sc = BroadcastScenario(
            topology=Torus.square(9, 1),
            protocol="cpa",
            t=1,
            byzantine_processes={
                (1, 1): EagerLiarByzantine([1, 2, 3]),
                (4, 4): EagerLiarByzantine({"a": 0}),
            },
            max_rounds=60,
            engine=engine,
        )
        metrics = RunMetrics(source=sc.source)
        out = sc.run(observers=[metrics])
        return (
            canonical_json(metrics.summary()),
            sorted(
                (n, p.committed_value())
                for n, p in out.result.processes.items()
            ),
            out.result.trace.summary(),
            out.achieved,
        )

    assert run("reference") == run("fastpath")
