"""Tests for repro.analysis.sweep (threshold sharpness curves)."""

from repro.analysis.sweep import (
    SweepPoint,
    byzantine_sharpness_sweep,
    crash_sharpness_sweep,
)
from repro.core.thresholds import byzantine_linf_max_t, crash_linf_max_t


class TestByzantineSweep:
    def test_guaranteed_region_always_succeeds(self):
        pts = byzantine_sharpness_sweep(
            1, budgets=[0, 1], protocol="bv-two-hop", trials=3
        )
        for pt in pts:
            assert pt.t <= byzantine_linf_max_t(1)
            assert pt.success_fraction == 1.0
            assert pt.safety_fraction == 1.0

    def test_rows_shape(self):
        pts = byzantine_sharpness_sweep(1, budgets=[1], trials=2)
        row = pts[0].row()
        assert set(row) == {
            "t",
            "trials",
            "success_fraction",
            "safety_fraction",
            "mean_undecided",
        }

    def test_deterministic(self):
        a = byzantine_sharpness_sweep(1, budgets=[1], trials=2, seed=5)
        b = byzantine_sharpness_sweep(1, budgets=[1], trials=2, seed=5)
        assert a == b


class TestCrashSweep:
    def test_guaranteed_region(self):
        t_max = crash_linf_max_t(1)
        pts = crash_sharpness_sweep(1, budgets=[0, t_max], trials=3)
        assert all(pt.success_fraction == 1.0 for pt in pts)

    def test_safety_trivially_one(self):
        pts = crash_sharpness_sweep(1, budgets=[2], trials=2)
        assert pts[0].safety_fraction == 1.0
