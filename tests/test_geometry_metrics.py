"""Tests for repro.geometry.metrics: metric axioms, ball enumeration,
alias resolution."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.metrics import L1, L2, LINF, Metric, get_metric

coords = st.tuples(
    st.integers(min_value=-30, max_value=30),
    st.integers(min_value=-30, max_value=30),
)
metrics = st.sampled_from([L1, L2, LINF])
radii = st.integers(min_value=0, max_value=6)


class TestMetricAxioms:
    @given(metrics, coords)
    def test_identity(self, m, a):
        assert m.distance(a, a) == 0

    @given(metrics, coords, coords)
    def test_symmetry(self, m, a, b):
        assert m.distance(a, b) == pytest.approx(m.distance(b, a))

    @given(metrics, coords, coords)
    def test_positivity(self, m, a, b):
        if a != b:
            assert m.distance(a, b) > 0

    @given(metrics, coords, coords, coords)
    def test_triangle_inequality(self, m, a, b, c):
        assert m.distance(a, c) <= m.distance(a, b) + m.distance(b, c) + 1e-9

    @given(coords, coords)
    def test_metric_ordering(self, a, b):
        """L-inf <= L2 <= L1 pointwise."""
        assert LINF.distance(a, b) <= L2.distance(a, b) + 1e-9
        assert L2.distance(a, b) <= L1.distance(a, b) + 1e-9


class TestWithin:
    @given(metrics, coords, coords, radii)
    def test_within_matches_distance(self, m, a, b, r):
        assert m.within(a, b, r) == (m.distance(a, b) <= r + 1e-12)

    def test_l2_boundary_points_exact(self):
        # (3, 4) is exactly at distance 5: must be inside for r = 5.
        assert L2.within((0, 0), (3, 4), 5)
        assert not L2.within((0, 0), (3, 5), 5)

    def test_linf_square(self):
        assert LINF.within((0, 0), (2, -2), 2)
        assert not LINF.within((0, 0), (3, 0), 2)

    def test_l1_diamond(self):
        assert L1.within((0, 0), (1, 1), 2)
        assert not L1.within((0, 0), (2, 1), 2)


class TestOffsets:
    @given(metrics, radii)
    def test_offsets_exclude_origin(self, m, r):
        assert (0, 0) not in m.offsets(r)

    @given(metrics, radii)
    def test_offsets_all_within(self, m, r):
        for off in m.offsets(r):
            assert m.within((0, 0), off, r)

    @given(metrics, radii)
    def test_offsets_symmetric(self, m, r):
        offs = set(m.offsets(r))
        assert {(-x, -y) for x, y in offs} == offs

    @given(metrics, st.integers(min_value=0, max_value=5))
    def test_offsets_monotone_in_radius(self, m, r):
        assert set(m.offsets(r)) <= set(m.offsets(r + 1))

    def test_known_sizes(self):
        assert len(LINF.offsets(1)) == 8
        assert len(LINF.offsets(2)) == 24
        assert len(L1.offsets(1)) == 4
        assert len(L1.offsets(2)) == 12
        assert len(L2.offsets(1)) == 4
        assert len(L2.offsets(2)) == 12  # (±1,±1) included: sqrt(2) <= 2

    def test_offsets_cached(self):
        assert LINF.offsets(3) is LINF.offsets(3)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            LINF.offsets(-1)


class TestGetMetric:
    def test_canonical_names(self):
        assert get_metric("l1") is L1
        assert get_metric("l2") is L2
        assert get_metric("linf") is LINF

    def test_aliases(self):
        assert get_metric("euclidean") is L2
        assert get_metric("chebyshev") is LINF
        assert get_metric("manhattan") is L1
        assert get_metric("MAX") is LINF

    def test_passthrough(self):
        assert get_metric(L2) is L2

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown metric"):
            get_metric("l3")

    def test_repr_mentions_name(self):
        assert "linf" in repr(LINF)
