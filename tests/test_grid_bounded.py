"""Tests for repro.grid.bounded (the boundary-anomaly topology)."""

import pytest

from repro.analysis.flows import local_vertex_connectivity
from repro.errors import ConfigurationError
from repro.grid.bounded import BoundedGrid
from repro.grid.graphs import adjacency_map
from repro.grid.torus import Torus
from repro.protocols.registry import correct_process_map
from repro.radio.run import run_broadcast


class TestBasics:
    def test_construction(self):
        g = BoundedGrid(5, 7, 1)
        assert len(g) == 35
        assert g.num_nodes == 35
        assert g.is_finite
        assert "BoundedGrid(5x7" in repr(g)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            BoundedGrid(0, 5, 1)

    def test_no_wrap(self):
        g = BoundedGrid(5, 5, 1)
        assert g.canonical((7, -1)) == (7, -1)  # identity, no wrapping
        assert not g.contains((7, -1))
        assert g.contains((4, 4))

    def test_neighbor_truncation(self):
        g = BoundedGrid(9, 9, 1)
        assert len(g.neighbors((0, 0))) == 3  # corner
        assert len(g.neighbors((0, 4))) == 5  # edge
        assert len(g.neighbors((4, 4))) == 8  # interior

    def test_neighbors_outside_rejected(self):
        g = BoundedGrid(5, 5, 1)
        with pytest.raises(ConfigurationError):
            g.neighbors((9, 9))

    def test_is_boundary(self):
        g = BoundedGrid(9, 9, 2)
        assert g.is_boundary((0, 0))
        assert g.is_boundary((1, 4))
        assert not g.is_boundary((4, 4))
        assert g.is_boundary((4, 4), margin=5)

    def test_neighbor_symmetry(self):
        g = BoundedGrid(7, 7, 2)
        for node in g.nodes():
            for nb in g.neighbors(node):
                assert node in g.neighbors(nb)


class TestBoundaryAnomalies:
    """The paper's reason for choosing torus/infinite grids, quantified."""

    def test_corner_connectivity_below_torus(self):
        r = 1
        bounded = BoundedGrid.square(9, r)
        torus = Torus.square(9, r)
        source = (4, 4)
        corner_cut = local_vertex_connectivity(
            adjacency_map(bounded), source, (0, 0)
        )
        interior_cut = local_vertex_connectivity(
            adjacency_map(torus), source, (0, 0)
        )
        assert corner_cut == 3  # the corner's degree
        assert interior_cut > corner_cut

    def test_crash_tolerance_degrades_at_corner(self):
        """t faults that any torus neighborhood tolerates can strand a
        bounded-grid corner: kill the corner's 3 neighbors (valid for
        t = r(2r+1) - 1 = 2? no -- 3 faults in one nbd needs t >= 3, which
        equals the torus threshold; but the *relative* cost is the point:
        3 faults cut the corner while the torus needs a 2-strip)."""
        r = 1
        bounded = BoundedGrid.square(9, r)
        source = (4, 4)
        crashed = {(0, 1), (1, 1), (1, 0)}
        correct = set(bounded.nodes()) - crashed
        processes = correct_process_map(
            bounded, "crash-flood", 3, source, 1, correct
        )
        out = run_broadcast(
            bounded,
            processes,
            1,
            correct,
            crash_round={c: 0 for c in crashed},
        )
        assert not out.live
        assert out.undecided == [(0, 0)]

    def test_fault_free_broadcast_still_works(self):
        bounded = BoundedGrid.square(9, 1)
        correct = set(bounded.nodes())
        processes = correct_process_map(
            bounded, "crash-flood", 0, (4, 4), 1, correct
        )
        out = run_broadcast(bounded, processes, 1, correct)
        assert out.achieved

    def test_cpa_fault_free_on_bounded_grid(self):
        bounded = BoundedGrid.square(9, 1)
        correct = set(bounded.nodes())
        processes = correct_process_map(bounded, "cpa", 0, (4, 4), 1, correct)
        out = run_broadcast(bounded, processes, 1, correct)
        assert out.achieved


class TestBoundedBallTruncation:
    """Edge pins for the closed-ball geometry on bounded grids.

    ``closed_ball_points`` truncates to points the grid actually hosts;
    before the fix it returned phantom off-grid centers for boundary
    balls (canonicalization is the identity here), silently inflating
    the budget-validation windows near corners and edges and making the
    counts asymmetric between the four corners and the interior.
    """

    # (label, center, metric) -> |closed ball| on a 7x7 grid with r=2
    PINS = {
        ("corner", (0, 0), "linf"): 9,      # 3x3 quadrant
        ("corner", (0, 0), "l2"): 6,
        ("edge", (3, 0), "linf"): 15,       # 5x3 half-window
        ("edge", (3, 0), "l2"): 9,
        ("interior", (3, 3), "linf"): 25,   # full (2r+1)^2 window
        ("interior", (3, 3), "l2"): 13,     # full lattice disc
    }

    @pytest.mark.parametrize(
        "label,center,metric,expected",
        [(lb, c, m, n) for (lb, c, m), n in sorted(PINS.items())],
    )
    def test_ball_cardinality_pins(self, label, center, metric, expected):
        from repro.geometry.balls import closed_ball_points

        g = BoundedGrid.square(7, 2)
        pts = closed_ball_points(metric, center, 2, topology=g)
        assert len(pts) == expected, (label, center, metric)
        assert len(set(pts)) == len(pts)
        assert all(g.contains(q) for q in pts), (
            f"{label} ball leaked off-grid points: "
            f"{[q for q in pts if not g.contains(q)]}"
        )
        assert center in pts  # the ball is closed

    @pytest.mark.parametrize("metric", ["linf", "l2"])
    def test_four_corners_symmetric(self, metric):
        """All four corner balls are congruent -- the asymmetry the
        phantom points used to introduce is gone."""
        from repro.geometry.balls import closed_ball_points

        g = BoundedGrid.square(7, 2)
        sizes = {
            corner: len(closed_ball_points(metric, corner, 2, topology=g))
            for corner in ((0, 0), (0, 6), (6, 0), (6, 6))
        }
        assert len(set(sizes.values())) == 1, sizes

    def test_interior_ball_matches_free_lattice(self):
        """Far from the boundary the truncation is a no-op: the bounded
        ball equals the free-lattice ball (plus center)."""
        from repro.geometry.balls import ball_points, closed_ball_points

        g = BoundedGrid.square(9, 2)
        for metric in ("linf", "l1", "l2"):
            free = set(ball_points(metric, (4, 4), 2)) | {(4, 4)}
            bounded = set(closed_ball_points(metric, (4, 4), 2, topology=g))
            assert bounded == free, metric

    def test_budget_witness_center_is_a_real_node(self):
        """Budget validation anchors its worst-neighborhood witness at a
        node the grid actually hosts, even for corner-packed faults."""
        from repro.faults.placement import max_faults_per_nbd

        g = BoundedGrid.square(7, 1)
        worst, center = max_faults_per_nbd(
            [(0, 0), (0, 1), (1, 0)], 1, metric="linf", topology=g
        )
        assert worst == 3
        assert g.contains(center)
