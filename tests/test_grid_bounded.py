"""Tests for repro.grid.bounded (the boundary-anomaly topology)."""

import pytest

from repro.analysis.flows import local_vertex_connectivity
from repro.errors import ConfigurationError
from repro.grid.bounded import BoundedGrid
from repro.grid.graphs import adjacency_map
from repro.grid.torus import Torus
from repro.protocols.registry import correct_process_map
from repro.radio.run import run_broadcast


class TestBasics:
    def test_construction(self):
        g = BoundedGrid(5, 7, 1)
        assert len(g) == 35
        assert g.num_nodes == 35
        assert g.is_finite
        assert "BoundedGrid(5x7" in repr(g)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            BoundedGrid(0, 5, 1)

    def test_no_wrap(self):
        g = BoundedGrid(5, 5, 1)
        assert g.canonical((7, -1)) == (7, -1)  # identity, no wrapping
        assert not g.contains((7, -1))
        assert g.contains((4, 4))

    def test_neighbor_truncation(self):
        g = BoundedGrid(9, 9, 1)
        assert len(g.neighbors((0, 0))) == 3  # corner
        assert len(g.neighbors((0, 4))) == 5  # edge
        assert len(g.neighbors((4, 4))) == 8  # interior

    def test_neighbors_outside_rejected(self):
        g = BoundedGrid(5, 5, 1)
        with pytest.raises(ConfigurationError):
            g.neighbors((9, 9))

    def test_is_boundary(self):
        g = BoundedGrid(9, 9, 2)
        assert g.is_boundary((0, 0))
        assert g.is_boundary((1, 4))
        assert not g.is_boundary((4, 4))
        assert g.is_boundary((4, 4), margin=5)

    def test_neighbor_symmetry(self):
        g = BoundedGrid(7, 7, 2)
        for node in g.nodes():
            for nb in g.neighbors(node):
                assert node in g.neighbors(nb)


class TestBoundaryAnomalies:
    """The paper's reason for choosing torus/infinite grids, quantified."""

    def test_corner_connectivity_below_torus(self):
        r = 1
        bounded = BoundedGrid.square(9, r)
        torus = Torus.square(9, r)
        source = (4, 4)
        corner_cut = local_vertex_connectivity(
            adjacency_map(bounded), source, (0, 0)
        )
        interior_cut = local_vertex_connectivity(
            adjacency_map(torus), source, (0, 0)
        )
        assert corner_cut == 3  # the corner's degree
        assert interior_cut > corner_cut

    def test_crash_tolerance_degrades_at_corner(self):
        """t faults that any torus neighborhood tolerates can strand a
        bounded-grid corner: kill the corner's 3 neighbors (valid for
        t = r(2r+1) - 1 = 2? no -- 3 faults in one nbd needs t >= 3, which
        equals the torus threshold; but the *relative* cost is the point:
        3 faults cut the corner while the torus needs a 2-strip)."""
        r = 1
        bounded = BoundedGrid.square(9, r)
        source = (4, 4)
        crashed = {(0, 1), (1, 1), (1, 0)}
        correct = set(bounded.nodes()) - crashed
        processes = correct_process_map(
            bounded, "crash-flood", 3, source, 1, correct
        )
        out = run_broadcast(
            bounded,
            processes,
            1,
            correct,
            crash_round={c: 0 for c in crashed},
        )
        assert not out.live
        assert out.undecided == [(0, 0)]

    def test_fault_free_broadcast_still_works(self):
        bounded = BoundedGrid.square(9, 1)
        correct = set(bounded.nodes())
        processes = correct_process_map(
            bounded, "crash-flood", 0, (4, 4), 1, correct
        )
        out = run_broadcast(bounded, processes, 1, correct)
        assert out.achieved

    def test_cpa_fault_free_on_bounded_grid(self):
        bounded = BoundedGrid.square(9, 1)
        correct = set(bounded.nodes())
        processes = correct_process_map(bounded, "cpa", 0, (4, 4), 1, correct)
        out = run_broadcast(bounded, processes, 1, correct)
        assert out.achieved
