"""Tests for repro.geometry.symmetry (the dihedral group D4)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.metrics import L1, L2, LINF
from repro.geometry.symmetry import (
    DIHEDRAL_TRANSFORMS,
    identity,
    mirror_anti,
    mirror_diag,
    mirror_x,
    mirror_y,
    rot90,
    rot180,
    rot270,
    transform_path,
    transform_point,
    transform_points,
)

coords = st.tuples(
    st.integers(min_value=-20, max_value=20),
    st.integers(min_value=-20, max_value=20),
)
transforms = st.sampled_from(list(DIHEDRAL_TRANSFORMS.values()))


class TestGroupStructure:
    def test_eight_distinct_elements(self):
        probe = (2, 1)  # generic point: all images distinct
        images = {name: t(probe) for name, t in DIHEDRAL_TRANSFORMS.items()}
        assert len(set(images.values())) == 8

    @given(coords)
    def test_rotation_orders(self, p):
        assert rot90(rot90(p)) == rot180(p)
        assert rot90(rot270(p)) == p
        assert rot180(rot180(p)) == p

    @given(coords)
    def test_mirrors_are_involutions(self, p):
        for m in (mirror_x, mirror_y, mirror_diag, mirror_anti):
            assert m(m(p)) == p

    @given(coords)
    def test_diag_composition(self, p):
        # mirror_diag o mirror_x == rot90
        assert mirror_diag(mirror_x(p)) == rot90(p)


class TestMetricInvariance:
    @given(transforms, coords, coords)
    def test_all_metrics_invariant(self, t, a, b):
        for m in (L1, L2, LINF):
            assert m.distance(a, b) == m.distance(t(a), t(b))


class TestPivot:
    @given(transforms, coords)
    def test_pivot_fixed(self, t, c):
        assert transform_point(t, c, center=c) == c

    @given(transforms, coords, coords)
    def test_pivot_preserves_distance_to_center(self, t, p, c):
        q = transform_point(t, p, center=c)
        assert LINF.distance(p, c) == LINF.distance(q, c)

    def test_identity_pivot(self):
        assert transform_point(identity, (3, 4), center=(1, 1)) == (3, 4)

    def test_transform_points_and_path(self):
        pts = [(0, 0), (1, 0)]
        assert transform_points(rot90, pts) == [(0, 0), (0, 1)]
        assert transform_path(rot90, pts) == ((0, 0), (0, 1))
