"""Per-rule linter tests: one passing, one violating, and one suppressed
fixture for every shipped rule, plus framework behavior (suppression
parsing, reporters, exit codes)."""

import json

import pytest

from repro.lint import (
    Severity,
    all_rules,
    format_json,
    format_text,
    lint_paths,
)

# ---------------------------------------------------------------------------
# fixture helpers


def write_tree(root, files):
    """Materialize ``{relative_path: source}`` under ``root``.

    Creates ``__init__.py`` in every intermediate directory so the
    linter derives proper dotted module names (``repro.radio.engine``).
    """
    for rel, source in files.items():
        path = root / rel
        parent = path.parent
        parent.mkdir(parents=True, exist_ok=True)
        d = parent
        while d != root:
            init = d / "__init__.py"
            if not init.exists():
                init.write_text('"""fixture package."""\n')
            d = d.parent
        path.write_text(source)
    return root


def run_lint(tmp_path, files, rules=None):
    """Write a fixture tree and lint it."""
    write_tree(tmp_path, files)
    return lint_paths([str(tmp_path)], rules)


def rule_ids(report):
    """The set of rule ids among a report's unsuppressed findings."""
    return {f.rule_id for f in report.findings}


# ---------------------------------------------------------------------------
# rule catalog sanity

EXPECTED_RULES = {
    "no-unseeded-rng",
    "no-envelope-forgery",
    "frozen-payloads",
    "ordered-iteration",
    "registry-conformance",
    "no-received-mutation",
    "adversary-injected-rng",
    # whole-program (deep) passes
    "nondet-taint",
    "cache-key-soundness",
    "fork-safety",
}

#: rules that only run under ``--deep`` (or by explicit id)
EXPECTED_DEEP_RULES = {
    "nondet-taint",
    "cache-key-soundness",
    "fork-safety",
}


def test_all_shipped_rules_registered():
    ids = {r.rule_id for r in all_rules()}
    assert EXPECTED_RULES <= ids
    for rule in all_rules():
        assert rule.description, rule.rule_id
        assert rule.severity is Severity.ERROR


def test_deep_rules_marked_and_excluded_by_default():
    from repro.lint import get_rules

    deep = {r.rule_id for r in all_rules() if r.deep}
    assert deep == EXPECTED_DEEP_RULES
    default = {r.rule_id for r in get_rules()}
    assert default.isdisjoint(EXPECTED_DEEP_RULES)
    with_deep = {r.rule_id for r in get_rules(include_deep=True)}
    assert EXPECTED_DEEP_RULES <= with_deep
    # an explicit id always resolves, deep or not
    assert [r.rule_id for r in get_rules(["nondet-taint"])] == [
        "nondet-taint"
    ]


# ---------------------------------------------------------------------------
# no-unseeded-rng


class TestNoUnseededRng:
    def test_passing(self, tmp_path):
        report = run_lint(
            tmp_path,
            {
                "mod.py": (
                    "import random\n"
                    "rng = random.Random(7)\n"
                    "value = rng.random()\n"
                )
            },
            rules=["no-unseeded-rng"],
        )
        assert report.findings == []
        assert report.exit_code == 0

    def test_violating(self, tmp_path):
        report = run_lint(
            tmp_path,
            {
                "mod.py": (
                    "import random\n"
                    "a = random.random()\n"
                    "b = random.Random()\n"
                    "from random import shuffle\n"
                )
            },
            rules=["no-unseeded-rng"],
        )
        assert len(report.findings) == 3
        assert rule_ids(report) == {"no-unseeded-rng"}
        assert report.exit_code == 1

    def test_suppressed(self, tmp_path):
        report = run_lint(
            tmp_path,
            {
                "mod.py": (
                    "import random\n"
                    "a = random.random()"
                    "  # repro: lint-ok[no-unseeded-rng] fixture\n"
                )
            },
            rules=["no-unseeded-rng"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.exit_code == 0


# ---------------------------------------------------------------------------
# adversary-injected-rng


class TestAdversaryInjectedRng:
    def test_passing_kernel(self, tmp_path):
        source = (
            "def add_fault(budget, rng, candidates):\n"
            "    return bool(rng.choice(sorted(candidates)))\n"
            "def _helper(candidates):\n"
            "    return sorted(candidates)\n"
        )
        report = run_lint(
            tmp_path,
            {"repro/adversary/moves.py": source},
            rules=["adversary-injected-rng"],
        )
        assert report.findings == []

    def test_violating_missing_rng_param(self, tmp_path):
        source = (
            "def add_fault(budget, candidates):\n"
            "    return budget\n"
        )
        report = run_lint(
            tmp_path,
            {"repro/adversary/moves.py": source},
            rules=["adversary-injected-rng"],
        )
        assert rule_ids(report) == {"adversary-injected-rng"}
        assert len(report.findings) == 1
        assert report.exit_code == 1

    def test_violating_own_generator(self, tmp_path):
        source = (
            "import random\n"
            "def add_fault(budget, rng, candidates):\n"
            "    other = random.Random(7)\n"
            "    return other.random()\n"
        )
        report = run_lint(
            tmp_path,
            {"repro/adversary/moves.py": source},
            rules=["adversary-injected-rng"],
        )
        assert len(report.findings) == 1

    def test_out_of_scope_module_ignored(self, tmp_path):
        source = (
            "import random\n"
            "def search(config):\n"
            "    return random.Random(config)\n"
        )
        report = run_lint(
            tmp_path,
            {"repro/adversary/strategies.py": source},
            rules=["adversary-injected-rng"],
        )
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        source = (
            "def add_fault(budget, candidates):"
            "  # repro: lint-ok[adversary-injected-rng] fixture\n"
            "    return budget\n"
        )
        report = run_lint(
            tmp_path,
            {"repro/adversary/moves.py": source},
            rules=["adversary-injected-rng"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# no-envelope-forgery

FORGERY = (
    "from repro.radio.messages import Envelope\n"
    "env = Envelope(sender=(0, 0), payload=None, seq=0, round=0, slot=0)\n"
)


class TestNoEnvelopeForgery:
    def test_passing_inside_radio(self, tmp_path):
        report = run_lint(
            tmp_path,
            {"repro/radio/custom.py": FORGERY},
            rules=["no-envelope-forgery"],
        )
        assert report.findings == []

    def test_violating_outside_radio(self, tmp_path):
        report = run_lint(
            tmp_path,
            {"repro/protocols/attack.py": FORGERY},
            rules=["no-envelope-forgery"],
        )
        assert rule_ids(report) == {"no-envelope-forgery"}
        assert report.exit_code == 1

    def test_violating_via_alias(self, tmp_path):
        source = (
            "from repro.radio.messages import Envelope as E\n"
            "env = E(sender=(0, 0), payload=None, seq=0, round=0, slot=0)\n"
        )
        report = run_lint(
            tmp_path,
            {"outside.py": source},
            rules=["no-envelope-forgery"],
        )
        assert len(report.findings) == 1

    def test_suppressed(self, tmp_path):
        source = (
            "from repro.radio.messages import Envelope\n"
            "# repro: lint-ok[no-envelope-forgery] replaying a recorded env\n"
            "env = Envelope(sender=(0, 0), payload=None,\n"
            "               seq=0, round=0, slot=0)\n"
        )
        report = run_lint(
            tmp_path,
            {"outside.py": source},
            rules=["no-envelope-forgery"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# frozen-payloads


class TestFrozenPayloads:
    def test_passing(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class PingMsg:\n"
            "    value: int\n"
        )
        report = run_lint(
            tmp_path, {"mod.py": source}, rules=["frozen-payloads"]
        )
        assert report.findings == []

    def test_violating_msg_suffix_anywhere(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class PingMsg:\n"
            "    value: int\n"
        )
        report = run_lint(
            tmp_path, {"mod.py": source}, rules=["frozen-payloads"]
        )
        assert rule_ids(report) == {"frozen-payloads"}
        assert report.exit_code == 1

    def test_violating_in_protocols_package(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=False)\n"
            "class Payload:\n"
            "    value: int\n"
        )
        report = run_lint(
            tmp_path,
            {"repro/protocols/mod.py": source},
            rules=["frozen-payloads"],
        )
        assert len(report.findings) == 1

    def test_plain_class_out_of_scope(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Accumulator:\n"
            "    value: int\n"
        )
        report = run_lint(
            tmp_path, {"mod.py": source}, rules=["frozen-payloads"]
        )
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class PingMsg:  # repro: lint-ok[frozen-payloads] builder type\n"
            "    value: int\n"
        )
        report = run_lint(
            tmp_path, {"mod.py": source}, rules=["frozen-payloads"]
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# ordered-iteration


class TestOrderedIteration:
    def test_passing_sorted(self, tmp_path):
        source = (
            "def fanout(targets: set):\n"
            "    for t in sorted(targets):\n"
            "        print(t)\n"
        )
        report = run_lint(
            tmp_path,
            {"repro/protocols/mod.py": source},
            rules=["ordered-iteration"],
        )
        assert report.findings == []

    def test_violating_set_iteration(self, tmp_path):
        source = (
            "def fanout(targets: set):\n"
            "    for t in targets:\n"
            "        print(t)\n"
        )
        report = run_lint(
            tmp_path,
            {"repro/protocols/mod.py": source},
            rules=["ordered-iteration"],
        )
        assert rule_ids(report) == {"ordered-iteration"}
        assert report.exit_code == 1

    def test_violating_set_attribute(self, tmp_path):
        source = (
            "from typing import Set\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self.jammers: Set[int] = set()\n"
            "    def poll(self):\n"
            "        return [j for j in self.jammers]\n"
        )
        report = run_lint(
            tmp_path,
            {"repro/radio/engine.py": source},
            rules=["ordered-iteration"],
        )
        assert len(report.findings) == 1

    def test_violating_list_materialization(self, tmp_path):
        source = "def snapshot(live: frozenset):\n    return list(live)\n"
        report = run_lint(
            tmp_path,
            {"repro/protocols/mod.py": source},
            rules=["ordered-iteration"],
        )
        assert len(report.findings) == 1

    def test_violating_dict_view_on_delivery_path(self, tmp_path):
        source = (
            "class P:\n"
            "    def on_receive(self, ctx, env):\n"
            "        for k, v in self.table.items():\n"
            "            print(k, v)\n"
        )
        report = run_lint(
            tmp_path,
            {"repro/protocols/mod.py": source},
            rules=["ordered-iteration"],
        )
        assert len(report.findings) == 1

    def test_dict_view_off_delivery_path_ok(self, tmp_path):
        source = (
            "class P:\n"
            "    def summarize(self):\n"
            "        return [k for k, v in self.table.items()]\n"
        )
        report = run_lint(
            tmp_path,
            {"repro/protocols/mod.py": source},
            rules=["ordered-iteration"],
        )
        assert report.findings == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        source = (
            "def fanout(targets: set):\n"
            "    for t in targets:\n"
            "        print(t)\n"
        )
        report = run_lint(
            tmp_path,
            {"repro/analysis/mod.py": source},
            rules=["ordered-iteration"],
        )
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        source = (
            "def fanout(targets: set):\n"
            "    for t in targets:"
            "  # repro: lint-ok[ordered-iteration] order-insensitive sum\n"
            "        print(t)\n"
        )
        report = run_lint(
            tmp_path,
            {"repro/protocols/mod.py": source},
            rules=["ordered-iteration"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# registry-conformance

BASE = "class BroadcastProtocolNode:\n    pass\n"
IMPL = (
    "from repro.protocols.base import BroadcastProtocolNode\n"
    "class GoodProtocol(BroadcastProtocolNode):\n"
    "    pass\n"
    "class BadProtocol(GoodProtocol):\n"
    "    pass\n"
)


def conformance_tree(registry_source, impl=IMPL):
    return {
        "repro/protocols/base.py": BASE,
        "repro/protocols/impl.py": impl,
        "repro/protocols/registry.py": registry_source,
    }


class TestRegistryConformance:
    def test_passing(self, tmp_path):
        registry = (
            "from repro.protocols.impl import BadProtocol, GoodProtocol\n"
            "PROTOCOLS = {'good': GoodProtocol, 'bad': BadProtocol}\n"
        )
        report = run_lint(
            tmp_path,
            conformance_tree(registry),
            rules=["registry-conformance"],
        )
        assert report.findings == []

    def test_violating_unregistered_subclass(self, tmp_path):
        registry = (
            "from repro.protocols.impl import GoodProtocol\n"
            "PROTOCOLS = {'good': GoodProtocol}\n"
        )
        report = run_lint(
            tmp_path,
            conformance_tree(registry),
            rules=["registry-conformance"],
        )
        assert len(report.findings) == 1
        assert "BadProtocol" in report.findings[0].message
        assert report.exit_code == 1

    def test_suppressed(self, tmp_path):
        registry = (
            "from repro.protocols.impl import GoodProtocol\n"
            "PROTOCOLS = {'good': GoodProtocol}\n"
        )
        impl = IMPL.replace(
            "class BadProtocol(GoodProtocol):",
            "class BadProtocol(GoodProtocol):"
            "  # repro: lint-ok[registry-conformance] test-only stub",
        )
        report = run_lint(
            tmp_path,
            conformance_tree(registry, impl),
            rules=["registry-conformance"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_experiment_constructed_outside_registry(self, tmp_path):
        files = {
            "repro/experiments/registry.py": (
                "class Experiment:\n"
                "    pass\n"
                "_EXPERIMENTS = (Experiment(),)\n"
            ),
            "repro/experiments/rogue.py": (
                "from repro.experiments.registry import Experiment\n"
                "EXTRA = Experiment()\n"
            ),
        }
        report = run_lint(
            tmp_path, files, rules=["registry-conformance"]
        )
        assert len(report.findings) == 1
        assert report.findings[0].module == "repro.experiments.rogue"


# ---------------------------------------------------------------------------
# no-received-mutation


class TestNoReceivedMutation:
    def test_passing_read_only(self, tmp_path):
        source = (
            "class P:\n"
            "    def on_receive(self, ctx, env):\n"
            "        self.seen = env.payload.value\n"
            "        self.log.append(env.seq)\n"
        )
        report = run_lint(
            tmp_path, {"mod.py": source}, rules=["no-received-mutation"]
        )
        assert report.findings == []

    def test_violating_attribute_write(self, tmp_path):
        source = (
            "class P:\n"
            "    def on_receive(self, ctx, env):\n"
            "        env.payload.value = 42\n"
        )
        report = run_lint(
            tmp_path, {"mod.py": source}, rules=["no-received-mutation"]
        )
        assert rule_ids(report) == {"no-received-mutation"}
        assert report.exit_code == 1

    def test_violating_mutator_call(self, tmp_path):
        source = (
            "class P:\n"
            "    def on_receive(self, ctx, env):\n"
            "        env.payload.relays.append((0, 0))\n"
        )
        report = run_lint(
            tmp_path, {"mod.py": source}, rules=["no-received-mutation"]
        )
        assert len(report.findings) == 1

    def test_violating_annotated_helper(self, tmp_path):
        source = (
            "from repro.radio.messages import Envelope\n"
            "class P:\n"
            "    def _on_committed(self, ctx, env: Envelope, msg):\n"
            "        env.seq += 1\n"
        )
        report = run_lint(
            tmp_path, {"mod.py": source}, rules=["no-received-mutation"]
        )
        assert len(report.findings) == 1

    def test_suppressed(self, tmp_path):
        source = (
            "class P:\n"
            "    def on_receive(self, ctx, env):\n"
            "        env.payload.value = 42"
            "  # repro: lint-ok[no-received-mutation] fixture\n"
        )
        report = run_lint(
            tmp_path, {"mod.py": source}, rules=["no-received-mutation"]
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# framework behavior


class TestFramework:
    def test_suppression_without_reason_is_inert_and_warned(self, tmp_path):
        source = (
            "import random\n"
            "a = random.random()  # repro: lint-ok[no-unseeded-rng]\n"
        )
        report = run_lint(tmp_path, {"mod.py": source})
        assert "no-unseeded-rng" in rule_ids(report)  # not silenced
        assert "bad-suppression" in rule_ids(report)  # and called out
        assert report.exit_code == 1  # the error finding survives

    def test_suppression_for_other_rule_does_not_silence(self, tmp_path):
        source = (
            "import random\n"
            "a = random.random()"
            "  # repro: lint-ok[frozen-payloads] wrong id\n"
        )
        report = run_lint(tmp_path, {"mod.py": source})
        assert "no-unseeded-rng" in rule_ids(report)

    def test_parse_failure_exit_code_2(self, tmp_path):
        report = run_lint(tmp_path, {"mod.py": "def broken(:\n"})
        assert report.parse_failures
        assert report.exit_code == 2

    def test_unknown_rule_id_raises(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        with pytest.raises(KeyError):
            lint_paths([str(tmp_path)], ["no-such-rule"])

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths([str(tmp_path / "nope")])

    def test_text_reporter(self, tmp_path):
        report = run_lint(
            tmp_path, {"mod.py": "import random\na = random.random()\n"}
        )
        text = format_text(report)
        assert "error[no-unseeded-rng]" in text
        assert "1 error(s)" in text

    def test_json_reporter(self, tmp_path):
        report = run_lint(
            tmp_path, {"mod.py": "import random\na = random.random()\n"}
        )
        payload = json.loads(format_json(report))
        assert payload["summary"]["errors"] == 1
        assert payload["summary"]["clean"] is False
        (finding,) = payload["findings"]
        assert finding["rule"] == "no-unseeded-rng"
        assert finding["line"] == 2

    def test_clean_report_shape(self, tmp_path):
        report = run_lint(tmp_path, {"mod.py": "x = 1\n"})
        payload = json.loads(format_json(report))
        assert payload["summary"]["clean"] is True
        assert report.exit_code == 0


# ---------------------------------------------------------------------------
# no-received-mutation: observer callbacks


class TestNoReceivedMutationObservers:
    """Observer callbacks see the live shared envelopes too; the rule
    covers ``on_transmission`` / ``on_delivery`` like ``on_receive``."""

    def test_passing_read_only_observer(self, tmp_path):
        source = (
            "class Obs:\n"
            "    def on_transmission(self, env, receivers):\n"
            "        self.total += len(receivers)\n"
            "        self.last = env.seq\n"
            "    def on_delivery(self, node, env):\n"
            "        self.seen.append((node, env.seq))\n"
        )
        report = run_lint(
            tmp_path, {"mod.py": source}, rules=["no-received-mutation"]
        )
        assert report.findings == []

    def test_violating_on_transmission_write(self, tmp_path):
        source = (
            "class Obs:\n"
            "    def on_transmission(self, env, receivers):\n"
            "        env.seq = 0\n"
        )
        report = run_lint(
            tmp_path, {"mod.py": source}, rules=["no-received-mutation"]
        )
        assert rule_ids(report) == {"no-received-mutation"}
        assert report.exit_code == 1

    def test_violating_on_delivery_mutator_call(self, tmp_path):
        source = (
            "class Obs:\n"
            "    def on_delivery(self, node, env):\n"
            "        env.payload.relays.append(node)\n"
        )
        report = run_lint(
            tmp_path, {"mod.py": source}, rules=["no-received-mutation"]
        )
        assert len(report.findings) == 1

    def test_receivers_param_not_treated_as_envelope(self, tmp_path):
        """Only the envelope parameter is protected; the fanout tuple is
        positional index 2 and mutating a *copy* of it is fine."""
        source = (
            "class Obs:\n"
            "    def on_transmission(self, env, receivers):\n"
            "        mine = list(receivers)\n"
            "        mine.append((0, 0))\n"
        )
        report = run_lint(
            tmp_path, {"mod.py": source}, rules=["no-received-mutation"]
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# multi-line statement suppressions


class TestMultiLineSuppression:
    """A suppression anchored to a multi-line statement's *first* line
    covers findings reported on any of its continuation lines (the rule
    may anchor the finding at an inner expression, e.g. the taint pass
    reports at the source site inside a multi-line return)."""

    FILES = {
        "repro/exec/specs.py": (
            "import random\n"
            "def run_trial(spec, seed):\n"
            "    return {  # repro: lint-ok[nondet-taint] fixture debt\n"
            "        'x': random.random(),\n"
            "    }\n"
        ),
    }

    def test_first_line_suppression_covers_continuation(self, tmp_path):
        report = run_lint(tmp_path, self.FILES, ["nondet-taint"])
        assert report.findings == []
        assert len(report.suppressed) == 1
        finding, suppression = report.suppressed[0]
        # the finding sits on a continuation line, below the comment
        assert finding.line == 4
        assert suppression.line == 3

    def test_standalone_suppression_above_statement(self, tmp_path):
        report = run_lint(
            tmp_path,
            {
                "repro/exec/specs.py": (
                    "import random\n"
                    "def run_trial(spec, seed):\n"
                    "    # repro: lint-ok[nondet-taint] fixture debt\n"
                    "    return {\n"
                    "        'x': random.random(),\n"
                    "    }\n"
                ),
            },
            ["nondet-taint"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_suppression_on_sibling_statement_does_not_cover(self, tmp_path):
        report = run_lint(
            tmp_path,
            {
                "repro/exec/specs.py": (
                    "import random  # repro: lint-ok[nondet-taint] nope\n"
                    "def run_trial(spec, seed):\n"
                    "    return {\n"
                    "        'x': random.random(),\n"
                    "    }\n"
                ),
            },
            ["nondet-taint"],
        )
        assert len(report.findings) == 1
