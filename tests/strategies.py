"""Shared strategies for the cross-engine differential suite.

Two generators over the same point space, one per consumer:

- :func:`diff_points` -- a hypothesis strategy, for shrinkable
  property-based exploration (hypothesis minimizes any counterexample
  to a small, reportable scenario);
- :func:`sample_points` -- a plain seeded sampler, for the bulk
  deterministic sweep (hundreds of points, no shrinking machinery, the
  exact same list on every run and every machine).

A *point* is a plain dict of scenario-builder arguments: protocol,
radius, torus side, fault budget, metric, placement, crash staggering,
and the two safety valves.  Both engines must produce byte-identical
observable output at every point -- that is the fastpath equivalence
contract (see ``docs/ENGINES.md``).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence

from hypothesis import strategies as st

#: protocols with a fastpath kernel (mirrors
#: repro.radio.fastpath.FASTPATH_PROTOCOLS without importing numpy)
DIFF_PROTOCOLS = ("crash-flood", "bv-two-hop", "cpa")

#: metrics both backends implement exactly
DIFF_METRICS = ("linf", "l1", "l2")

#: fixed Byzantine strategies with a compiled fastpath message plan
#: (mirrors repro.radio.engines.FASTPATH_FIXED_STRATEGIES)
DIFF_BYZ_STRATEGIES = ("silent", "liar", "duplicitous", "fabricator")


def make_point(
    *,
    protocol: str,
    r: int,
    side: int,
    t: int,
    seed: int,
    metric: str = "linf",
    placement: str = "random",
    max_rounds: int = 48,
    max_messages: Optional[int] = None,
    staggered_max_round: Optional[int] = None,
) -> Dict[str, Any]:
    """One differential point, validated for torus feasibility."""
    assert side >= 2 * r + 1, "torus side must fit the radius"
    return {
        "protocol": protocol,
        "r": r,
        "side": side,
        "t": t,
        "seed": seed,
        "metric": metric,
        "placement": placement,
        "max_rounds": max_rounds,
        "max_messages": max_messages,
        "staggered_max_round": staggered_max_round,
    }


@st.composite
def diff_points(
    draw, protocols: Sequence[str] = DIFF_PROTOCOLS
) -> Dict[str, Any]:
    """Hypothesis strategy over differential points.

    Sides span the degenerate regimes on purpose: the smallest legal
    torus (side == 2r+1, where toroidal localization is maximally
    distorted), coloring-schedule sides (divisible by 2r+1), and
    sequential-schedule sides (not divisible).
    """
    protocol = draw(st.sampled_from(tuple(protocols)))
    r = draw(st.integers(min_value=1, max_value=2))
    side = draw(st.integers(min_value=2 * r + 1, max_value=12))
    t = draw(st.integers(min_value=0, max_value=3))
    metric = draw(st.sampled_from(DIFF_METRICS))
    seed = draw(st.integers(min_value=0, max_value=2**16 - 1))
    max_rounds = draw(st.sampled_from((1, 2, 3, 48)))
    max_messages = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=120))
    )
    staggered = draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=4))
    )
    placement = draw(st.sampled_from(("random", "strip")))
    if side < 2 * (3 * r + 1):  # two-strip construction infeasible
        placement = "random"
    return make_point(
        protocol=protocol,
        r=r,
        side=side,
        t=t,
        seed=seed,
        metric=metric,
        placement=placement,
        max_rounds=max_rounds,
        max_messages=max_messages,
        staggered_max_round=staggered,
    )


def make_byz_point(
    *,
    strategy: str,
    r: int,
    side: int,
    t: int,
    seed: int,
    metric: str = "linf",
    placement: str = "random",
    max_rounds: int = 48,
    max_messages: Optional[int] = None,
) -> Dict[str, Any]:
    """One Byzantine differential point (CPA, fixed-strategy faults)."""
    assert side >= 2 * r + 1, "torus side must fit the radius"
    assert strategy in DIFF_BYZ_STRATEGIES
    return {
        "strategy": strategy,
        "r": r,
        "side": side,
        "t": t,
        "seed": seed,
        "metric": metric,
        "placement": placement,
        "max_rounds": max_rounds,
        "max_messages": max_messages,
    }


@st.composite
def byz_diff_points(draw) -> Dict[str, Any]:
    """Hypothesis strategy over Byzantine (CPA) differential points.

    Same degenerate-regime coverage as :func:`diff_points` -- minimal
    tori, coloring vs sequential schedules, tripping budgets -- with the
    fault axis swapped from crashes to the four fixed Byzantine value
    strategies the fastpath compiles to message plans.
    """
    strategy = draw(st.sampled_from(DIFF_BYZ_STRATEGIES))
    r = draw(st.integers(min_value=1, max_value=2))
    side = draw(st.integers(min_value=2 * r + 1, max_value=12))
    t = draw(st.integers(min_value=0, max_value=4))
    metric = draw(st.sampled_from(DIFF_METRICS))
    seed = draw(st.integers(min_value=0, max_value=2**16 - 1))
    max_rounds = draw(st.sampled_from((1, 2, 3, 48)))
    max_messages = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=120))
    )
    placement = draw(st.sampled_from(("random", "strip")))
    if side < 2 * (3 * r + 1):  # two-strip construction infeasible
        placement = "random"
    return make_byz_point(
        strategy=strategy,
        r=r,
        side=side,
        t=t,
        seed=seed,
        metric=metric,
        placement=placement,
        max_rounds=max_rounds,
        max_messages=max_messages,
    )


def sample_byz_points(n: int, *, seed: int = 0) -> List[Dict[str, Any]]:
    """``n`` deterministic Byzantine differential points.

    Points alternate over :data:`DIFF_BYZ_STRATEGIES` so every fixed
    strategy gets an even share regardless of ``n``.
    """
    rng = random.Random(seed)
    points: List[Dict[str, Any]] = []
    for i in range(n):
        strategy = DIFF_BYZ_STRATEGIES[i % len(DIFF_BYZ_STRATEGIES)]
        r = rng.choice((1, 1, 2))  # weight small radii: denser coverage
        side = rng.randint(2 * r + 1, 12)
        placement = rng.choice(("random", "random", "strip"))
        if side < 2 * (3 * r + 1):  # two-strip construction infeasible
            placement = "random"
        points.append(
            make_byz_point(
                strategy=strategy,
                r=r,
                side=side,
                t=rng.randint(0, 4),
                seed=rng.randrange(2**16),
                metric=rng.choice(DIFF_METRICS),
                placement=placement,
                max_rounds=rng.choice((1, 2, 3, 48, 48, 48)),
                max_messages=rng.choice(
                    (None, None, None, 0, 1, rng.randint(2, 120))
                ),
            )
        )
    return points


#: run-table factor pool: spec fields whose levels always produce
#: distinct scenario keys (so generated tables are alias-free by
#: construction -- aliasing factors like ``strategy`` under
#: ``kind="crash"`` are a *rejected* table, tested separately)
RUNTABLE_FACTOR_POOL = (
    ("metric", ("linf", "l1", "l2")),
    ("topology", ("torus", "bounded", "rgg")),
    ("channel", ("ideal", "lossy", "jammed")),
    ("t", (0, 1, 2)),
    ("r", (1, 2)),
)


@st.composite
def run_tables(draw):
    """Hypothesis strategy over valid declarative run tables.

    Factors range over the orthogonal scenario axes (metric, topology,
    channel) plus the numeric knobs; the base block fixes a crash-flood
    scenario and fills in whichever of ``r``/``t`` is not swept (they
    have no spec default).  Every generated table is expandable: levels
    are unique per factor and the pool only contains always-keyed
    fields, so no two cells can normalize to the same scenario key.
    """
    from repro.exec import RunTable

    indices = draw(
        st.lists(
            st.integers(0, len(RUNTABLE_FACTOR_POOL) - 1),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    factors = []
    for idx in indices:
        name, pool = RUNTABLE_FACTOR_POOL[idx]
        levels = draw(
            st.lists(
                st.sampled_from(pool),
                min_size=1,
                max_size=len(pool),
                unique=True,
            )
        )
        factors.append((name, tuple(levels)))
    swept = {name for name, _ in factors}
    base = [
        ("kind", "crash"),
        ("protocol", "crash-flood"),
        ("placement", "random"),
    ]
    if "r" not in swept:
        base.append(("r", draw(st.integers(1, 2))))
    if "t" not in swept:
        base.append(("t", draw(st.integers(0, 2))))
    return RunTable(
        factors=tuple(factors),
        base=tuple(base),
        repetitions=draw(st.integers(1, 3)),
        name=draw(st.sampled_from(("tbl", "axes", "grid"))),
    )


def sample_points(
    n: int,
    *,
    seed: int = 0,
    protocols: Sequence[str] = DIFF_PROTOCOLS,
) -> List[Dict[str, Any]]:
    """``n`` deterministic differential points (same list every run).

    Points alternate over ``protocols`` so an even split is guaranteed
    regardless of ``n``; the remaining knobs are drawn from a seeded
    stream over the same space :func:`diff_points` explores.
    """
    rng = random.Random(seed)
    points: List[Dict[str, Any]] = []
    for i in range(n):
        protocol = protocols[i % len(protocols)]
        r = rng.choice((1, 1, 2))  # weight small radii: denser coverage
        side = rng.randint(2 * r + 1, 12)
        placement = rng.choice(("random", "random", "strip"))
        if side < 2 * (3 * r + 1):  # two-strip construction infeasible
            placement = "random"
        point = make_point(
            protocol=protocol,
            r=r,
            side=side,
            t=rng.randint(0, 3),
            seed=rng.randrange(2**16),
            metric=rng.choice(DIFF_METRICS),
            placement=placement,
            max_rounds=rng.choice((1, 2, 3, 48, 48, 48)),
            max_messages=rng.choice(
                (None, None, None, 0, 1, rng.randint(2, 120))
            ),
            staggered_max_round=rng.choice((None, None, 1, 2, 4)),
        )
        points.append(point)
    return points
