"""Property-based safety tests: Theorem 2 under arbitrary adversaries.

The paper's safety theorem quantifies over *all* adversary behaviors; we
approximate the quantifier with randomized placements x randomized
strategies x randomized seeds, checking that no correct node ever commits
a wrong value, for every protocol that claims Byzantine safety.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scenarios import byzantine_broadcast_scenario

protocols = st.sampled_from(["cpa", "bv-two-hop", "bv-indirect"])
strategies_st = st.sampled_from(
    ["silent", "liar", "duplicitous", "fabricator", "noise"]
)


class TestSafetyUniversal:
    @given(
        protocol=protocols,
        strategy=strategies_st,
        seed=st.integers(min_value=0, max_value=10_000),
        t=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=20)
    def test_no_wrong_commit_ever_random_placement(
        self, protocol, strategy, seed, t
    ):
        sc = byzantine_broadcast_scenario(
            r=1,
            t=t,
            protocol=protocol,
            strategy=strategy,
            placement="random",
            seed=seed,
        )
        out = sc.run()
        assert out.safe, (protocol, strategy, seed, t, out.wrong_commits)

    @given(
        protocol=protocols,
        strategy=strategies_st,
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=10)
    def test_no_wrong_commit_ever_strip_placement(
        self, protocol, strategy, seed
    ):
        sc = byzantine_broadcast_scenario(
            r=1,
            t=2,
            protocol=protocol,
            strategy=strategy,
            placement="strip",
            seed=seed,
        )
        out = sc.run()
        assert out.safe

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10)
    def test_liveness_below_threshold_random_placements(self, seed):
        """Theorem 3 under random (not just strip) adversarial layouts."""
        sc = byzantine_broadcast_scenario(
            r=1,
            t=1,
            protocol="bv-two-hop",
            strategy="fabricator",
            placement="random",
            seed=seed,
        )
        sc.validate()
        out = sc.run()
        assert out.achieved

    @given(
        seed=st.integers(min_value=0, max_value=1000),
        budget_overrun=st.booleans(),
    )
    @settings(max_examples=8)
    def test_undecided_only_when_over_budget(self, seed, budget_overrun):
        """With the protocol told the true budget, runs either achieve
        broadcast (valid placement) or at minimum stay safe."""
        t = 1 if not budget_overrun else 2
        sc = byzantine_broadcast_scenario(
            r=1,
            t=t,
            protocol="bv-two-hop",
            strategy="liar",
            placement="random",
            seed=seed,
        )
        out = sc.run()
        assert out.safe
        if not budget_overrun:
            assert out.live
