"""Tests for repro.radio.engine: the paper's channel model invariants.

The properties under test are the ones every proof in the paper leans on:
reliable local broadcast (atomic full-neighborhood delivery), per-sender
FIFO ordering, unforgeable sender identity, deterministic TDMA execution,
and clean crash-stop semantics.
"""

import pytest

from repro.errors import ConfigurationError, SimulationLimitError
from repro.grid.torus import Torus
from repro.radio.engine import Engine
from repro.radio.node import Context, FunctionProcess, NodeProcess, SilentProcess


def collector(log, name):
    """A process recording (round, sender, payload) of everything heard."""

    def recv(ctx, env):
        log.append((name, env.sender, env.payload, env.seq))

    return FunctionProcess(on_receive=recv)


class Broadcaster(NodeProcess):
    def __init__(self, payloads):
        self.payloads = list(payloads)

    def on_start(self, ctx):
        for p in self.payloads:
            ctx.broadcast(p)


class TestDelivery:
    def test_atomic_full_neighborhood_delivery(self):
        t = Torus.square(7, 2)
        log = []
        procs = {(3, 3): Broadcaster(["hello"])}
        for nb in t.neighbors((3, 3)):
            procs[nb] = collector(log, nb)
        Engine(t, procs).run()
        receivers = {entry[0] for entry in log}
        assert receivers == set(t.neighbors((3, 3)))
        assert all(entry[2] == "hello" for entry in log)

    def test_sender_not_self_delivered(self):
        t = Torus.square(5, 1)
        log = []
        procs = {(0, 0): Broadcaster(["x"]), (2, 2): collector(log, (2, 2))}
        # (2,2) is NOT a neighbor of (0,0) on this torus with r=1
        Engine(t, procs).run()
        assert log == []

    def test_sender_identity_stamped(self):
        t = Torus.square(5, 1)
        log = []
        procs = {(1, 1): Broadcaster(["m"]), (1, 2): collector(log, "sink")}
        Engine(t, procs).run()
        assert log[0][1] == (1, 1)


class TestOrdering:
    def test_per_sender_fifo(self):
        t = Torus.square(5, 1)
        log = []
        procs = {
            (1, 1): Broadcaster(["a", "b", "c"]),
            (1, 2): collector(log, "sink"),
        }
        Engine(t, procs).run()
        assert [e[2] for e in log] == ["a", "b", "c"]

    def test_global_seq_total_order(self):
        """All receivers observe any one sender's messages at increasing
        global sequence numbers, and two receivers agree on the order."""
        t = Torus.square(5, 1)
        log1, log2 = [], []
        procs = {
            (1, 1): Broadcaster(["a", "b"]),
            (1, 2): collector(log1, "s1"),
            (2, 1): collector(log2, "s2"),
        }
        Engine(t, procs).run()
        assert [e[2] for e in log1] == [e[2] for e in log2] == ["a", "b"]
        assert [e[3] for e in log1] == [e[3] for e in log2]

    def test_determinism(self):
        def run_once():
            t = Torus.square(5, 1)
            log = []
            procs = {
                (0, 0): Broadcaster(["x"]),
                (4, 4): Broadcaster(["y"]),
                (0, 1): collector(log, "sink"),
            }
            res = Engine(t, procs).run()
            return [(e[1], e[2]) for e in log], res.trace.transmissions

        assert run_once() == run_once()


class TestRelaying:
    def test_multi_hop_relay_takes_rounds(self):
        """A relay chain advances at most one frame per unheard hop, and
        the engine counts rounds correctly."""
        t = Torus.square(9, 1)

        def make_relay(name):
            done = []

            def recv(ctx, env):
                if not done:
                    done.append(True)
                    ctx.broadcast(env.payload)

            return FunctionProcess(on_receive=recv)

        procs = {(0, 0): Broadcaster(["w"])}
        for x in range(1, 5):
            procs[(x, 0)] = make_relay(x)
        res = Engine(t, procs).run()
        assert res.quiescent
        assert res.trace.transmissions == 5  # source + 4 relays


class TestCrashSemantics:
    def test_dead_from_start_never_transmits(self):
        t = Torus.square(5, 1)
        log = []
        procs = {(1, 1): Broadcaster(["m"]), (1, 2): collector(log, "s")}
        res = Engine(t, procs, crash_round={(1, 1): 0}).run()
        assert log == []
        assert res.trace.transmissions == 0

    def test_crashed_receiver_does_not_process(self):
        t = Torus.square(5, 1)
        log = []
        procs = {(1, 1): Broadcaster(["m"]), (1, 2): collector(log, "s")}
        Engine(t, procs, crash_round={(1, 2): 0}).run()
        assert log == []

    def test_crash_mid_run_stops_future_relay(self):
        t = Torus.square(9, 1)

        def relay(ctx, env):
            ctx.broadcast(env.payload)

        log = []
        procs = {
            (0, 0): Broadcaster(["m"]),
            (1, 0): FunctionProcess(on_receive=relay),
            (2, 0): collector(log, "far"),
        }
        # (1,0) receives in round 0 but crashes at round 1, before its
        # next transmission opportunity... its slot in round 0 already
        # passed (sequential order (0,0) < (1,0))? No: row-major order puts
        # (0,0) first, so (1,0) CAN relay within round 0. Crash at round 0
        # instead: it never acts at all.
        Engine(t, procs, crash_round={(1, 0): 0}).run()
        assert log == []

    def test_negative_crash_round_rejected(self):
        t = Torus.square(5, 1)
        with pytest.raises(ConfigurationError):
            Engine(t, {}, crash_round={(0, 0): -1})

    def test_crash_clears_outbox(self):
        """Messages queued but not yet transmitted die with the node."""
        t = Torus.square(5, 1)
        log = []

        class QueueThenDie(NodeProcess):
            def on_round(self, ctx):
                if ctx.round == 0:
                    ctx.broadcast("never")

        procs = {(4, 4): QueueThenDie(), (4, 3): collector(log, "s")}
        # Slot order: (4,4) is the last node; it queues in round 0 and
        # transmits in round 0 normally. Crash at round 0 prevents even
        # queueing. Use round 0 crash:
        Engine(t, procs, crash_round={(4, 4): 0}).run()
        assert log == []


class TestLimits:
    def test_round_limit_stop(self):
        t = Torus.square(5, 1)

        class Chatter(NodeProcess):
            def on_round(self, ctx):
                ctx.broadcast(ctx.round)

        res = Engine(t, {(0, 0): Chatter()}, max_rounds=5).run()
        assert res.hit_round_limit
        assert not res.quiescent
        assert res.rounds == 5

    def test_round_limit_raise(self):
        t = Torus.square(5, 1)

        class Chatter(NodeProcess):
            def on_round(self, ctx):
                ctx.broadcast("x")

        with pytest.raises(SimulationLimitError):
            Engine(
                t, {(0, 0): Chatter()}, max_rounds=3, on_limit="raise"
            ).run()

    def test_message_limit(self):
        t = Torus.square(5, 1)
        res = Engine(
            t, {(0, 0): Broadcaster(list(range(100)))}, max_messages=10
        ).run()
        assert res.hit_message_limit
        assert res.trace.transmissions == 10

    def test_bad_on_limit(self):
        with pytest.raises(ConfigurationError):
            Engine(Torus.square(5, 1), {}, on_limit="explode")

    def test_bad_max_rounds(self):
        with pytest.raises(ConfigurationError):
            Engine(Torus.square(5, 1), {}, max_rounds=0)

    def test_bad_idle_rounds(self):
        with pytest.raises(ConfigurationError):
            Engine(Torus.square(5, 1), {}, quiescent_after_idle_rounds=0)

    def test_idle_rounds_keep_timers_alive(self):
        """A process that schedules a future-round transmission survives
        the gap when the idle threshold allows it."""
        t = Torus.square(5, 1)
        log = []

        class LateSender(NodeProcess):
            def on_round(self, ctx):
                if ctx.round == 3:
                    ctx.broadcast("late")

        procs = {
            (1, 1): LateSender(),
            (1, 2): FunctionProcess(
                on_receive=lambda ctx, env: log.append(env.payload)
            ),
        }
        # default threshold (1 idle round): stops before round 3
        Engine(t, procs, max_rounds=10).run()
        assert log == []
        log.clear()
        procs = {
            (1, 1): LateSender(),
            (1, 2): FunctionProcess(
                on_receive=lambda ctx, env: log.append(env.payload)
            ),
        }
        Engine(t, procs, max_rounds=10, quiescent_after_idle_rounds=5).run()
        assert log == ["late"]


class TestEndOfRoundDelivery:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="delivery"):
            Engine(Torus.square(5, 1), {}, delivery="eventually")

    def test_reception_delayed_one_round(self):
        t = Torus.square(5, 1)
        log = []
        procs = {
            (1, 1): Broadcaster(["m"]),
            (1, 2): FunctionProcess(
                on_receive=lambda ctx, env: log.append(ctx.round)
            ),
        }
        Engine(t, procs, delivery="end-of-round").run()
        assert log == [1]  # transmitted round 0, processed round 1

    def test_relay_advances_one_hop_per_round(self):
        """Under synchronous delivery a k-hop relay chain takes k rounds."""
        t = Torus.square(11, 1)

        def make_relay():
            done = []

            def recv(ctx, env):
                if not done:
                    done.append(True)
                    ctx.broadcast(env.payload)

            return FunctionProcess(on_receive=recv)

        arrival = []
        procs = {(0, 0): Broadcaster(["w"])}
        for x in range(1, 4):
            procs[(x, 0)] = make_relay()
        procs[(4, 0)] = FunctionProcess(
            on_receive=lambda ctx, env: arrival.append(ctx.round)
        )
        res = Engine(t, procs, delivery="end-of-round").run()
        assert res.quiescent
        assert arrival and arrival[0] == 4  # 4 hops -> round 4

    def test_atomicity_preserved(self):
        t = Torus.square(5, 1)
        logs = {}
        procs = {(2, 2): Broadcaster(["a", "b"])}
        for nb in t.neighbors((2, 2)):
            logs[nb] = []
            procs[nb] = FunctionProcess(
                on_receive=lambda ctx, env, log=logs[nb]: log.append(
                    env.payload
                )
            )
        Engine(t, procs, delivery="end-of-round").run()
        assert all(log == ["a", "b"] for log in logs.values())

    def test_quiescence_waits_for_pending(self):
        """A run must not end with undelivered receptions in flight."""
        t = Torus.square(5, 1)
        log = []
        procs = {
            (1, 1): Broadcaster(["m"]),
            (1, 2): FunctionProcess(
                on_receive=lambda ctx, env: log.append(env.payload)
            ),
        }
        res = Engine(t, procs, delivery="end-of-round").run()
        assert res.quiescent
        assert log == ["m"]


class TestConfiguration:
    def test_missing_processes_default_silent(self):
        t = Torus.square(5, 1)
        res = Engine(t, {}).run()
        assert res.quiescent
        assert res.trace.transmissions == 0

    def test_noncanonical_process_keys(self):
        t = Torus.square(5, 1)
        log = []
        procs = {(5, 5): Broadcaster(["m"]), (0, 1): collector(log, "s")}
        Engine(t, procs).run()  # (5,5) wraps to (0,0), neighbor of (0,1)
        assert [e[2] for e in log] == ["m"]

    def test_halted_node_stops_receiving(self):
        t = Torus.square(5, 1)
        log = []

        class OneShot(NodeProcess):
            def on_receive(self, ctx, env):
                log.append(env.payload)
                ctx.halt()

        procs = {(1, 1): Broadcaster(["a", "b"]), (1, 2): OneShot()}
        Engine(t, procs).run()
        assert log == ["a"]

    def test_halt_still_flushes_outbox(self):
        t = Torus.square(5, 1)
        log = []

        class AnnounceAndHalt(NodeProcess):
            def on_start(self, ctx):
                ctx.broadcast("bye")
                ctx.halt()

        procs = {(1, 1): AnnounceAndHalt(), (1, 2): collector(log, "s")}
        Engine(t, procs).run()
        assert [e[2] for e in log] == ["bye"]

    def test_context_localize(self):
        t = Torus.square(7, 2)
        eng = Engine(t, {})
        ctx = eng.context_of((0, 0))
        assert ctx.localize((6, 6)) == (-1, -1)
        assert ctx.localize((3, 3)) == (3, 3)

    def test_result_committed_empty_for_plain_processes(self):
        t = Torus.square(5, 1)
        res = Engine(t, {(0, 0): Broadcaster(["z"])}).run()
        assert res.committed() == {}
        assert res.decided_nodes() == []
        assert len(res.undecided_nodes()) == 25


class TestRegressionFixes:
    """Regression pins for engine bugs fixed alongside the observer layer."""

    def test_falsy_process_not_replaced_by_silent(self):
        """A process whose class defines a falsy __bool__/__len__ is still
        a real process; only a missing (None) entry means SilentProcess."""
        t = Torus.square(5, 1)

        class FalsyProcess(NodeProcess):
            def __bool__(self):
                return False

        class EmptyProcess(NodeProcess):
            def __len__(self):
                return 0

        falsy, empty = FalsyProcess(), EmptyProcess()
        eng = Engine(t, {(0, 0): falsy, (1, 1): empty})
        assert eng.processes[(0, 0)] is falsy
        assert eng.processes[(1, 1)] is empty
        assert isinstance(eng.processes[(2, 2)], SilentProcess)

    def test_falsy_process_still_runs(self):
        t = Torus.square(5, 1)
        log = []

        class FalsyBroadcaster(NodeProcess):
            def __bool__(self):
                return False

            def on_start(self, ctx):
                ctx.broadcast("present")

        procs = {
            (1, 1): FalsyBroadcaster(),
            (1, 2): collector(log, "sink"),
        }
        Engine(t, procs).run()
        assert [e[2] for e in log] == ["present"]

    def test_message_budget_stop_accounts_partial_round(self):
        """A round truncated mid-frame by the message budget still counts:
        result.rounds and engine.round agree, and the trace saw the
        round end."""
        t = Torus.square(5, 1)
        eng = Engine(
            t, {(0, 0): Broadcaster(list(range(100)))}, max_messages=10
        )
        res = eng.run()
        assert res.hit_message_limit
        assert res.rounds == eng.round + 1 == 1
        assert res.trace.rounds == 1

    def test_message_budget_stop_in_later_round(self):
        t = Torus.square(5, 1)

        class Chatter(NodeProcess):
            def on_round(self, ctx):
                ctx.broadcast(ctx.round)

        eng = Engine(t, {(0, 0): Chatter()}, max_messages=3)
        res = eng.run()
        assert res.hit_message_limit
        # one tx per round: budget trips while draining round 3's outbox
        assert res.rounds == eng.round + 1 == res.trace.rounds == 4
