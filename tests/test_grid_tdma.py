"""Tests for repro.grid.tdma (collision-free schedules)."""

import pytest

from repro.errors import ConfigurationError
from repro.grid.tdma import (
    TDMASchedule,
    grid_coloring_schedule,
    make_schedule,
    sequential_schedule,
    validate_schedule,
)
from repro.grid.torus import Torus


class TestScheduleObject:
    def test_slot_lookup(self):
        s = TDMASchedule((((0, 0),), ((1, 1),)))
        assert s.slot_of((0, 0)) == 0
        assert s.slot_of((1, 1)) == 1
        assert s.frame_length == 2
        assert len(s) == 2
        assert (0, 0) in s and (5, 5) not in s

    def test_duplicate_assignment_rejected(self):
        with pytest.raises(ConfigurationError, match="appears in slots"):
            TDMASchedule((((0, 0),), ((0, 0),)))

    def test_missing_node_lookup(self):
        s = TDMASchedule((((0, 0),),))
        with pytest.raises(KeyError):
            s.slot_of((9, 9))


class TestColoring:
    def test_valid_on_divisible_torus(self):
        t = Torus.square(10, 2)  # 10 % 5 == 0
        s = grid_coloring_schedule(t)
        assert s.frame_length == 25
        validate_schedule(s, t)

    def test_rejected_on_indivisible_torus(self):
        t = Torus.square(11, 2)
        with pytest.raises(ConfigurationError, match="divisible"):
            grid_coloring_schedule(t)

    def test_covers_all_nodes(self):
        t = Torus.square(6, 1)
        s = grid_coloring_schedule(t)
        assert len(s) == 36

    def test_valid_under_l2(self):
        """L-inf spacing implies L2 spacing: the coloring stays valid."""
        t = Torus.square(15, 2, metric="l2")
        s = grid_coloring_schedule(t)
        validate_schedule(s, t)


class TestSequential:
    def test_always_valid(self):
        t = Torus.square(7, 3)
        s = sequential_schedule(t)
        assert s.frame_length == 49
        validate_schedule(s, t)


class TestMakeSchedule:
    def test_prefers_coloring_when_divisible(self):
        assert make_schedule(Torus.square(10, 2)).name.startswith("coloring")

    def test_falls_back_to_sequential(self):
        assert make_schedule(Torus.square(11, 2)).name == "sequential"


class TestValidation:
    def test_catches_interference(self):
        t = Torus.square(7, 1)
        # put two nodes at distance 2 (= 2r) in the same slot
        bad = TDMASchedule(
            (((0, 0), (2, 0)),)
            + tuple(
                (n,)
                for n in t.nodes()
                if n not in ((0, 0), (2, 0))
            )
        )
        with pytest.raises(ConfigurationError, match="collide"):
            validate_schedule(bad, t)

    def test_catches_missing_node(self):
        t = Torus.square(5, 1)
        partial = TDMASchedule((((0, 0),),))
        with pytest.raises(ConfigurationError, match="no slot"):
            validate_schedule(partial, t)

    def test_catches_wrapped_interference(self):
        t = Torus.square(5, 1)
        # (0,0) and (4,0) are at wrapped distance 1 <= 2r
        bad = TDMASchedule(
            (((0, 0), (4, 0)),)
            + tuple((n,) for n in t.nodes() if n not in ((0, 0), (4, 0)))
        )
        with pytest.raises(ConfigurationError, match="collide"):
            validate_schedule(bad, t)
