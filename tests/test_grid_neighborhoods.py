"""Tests for repro.grid.neighborhoods (nbd / pnbd / covering centers)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.metrics import get_metric
from repro.grid.neighborhoods import (
    covered_by_single_nbd,
    nbd,
    nbd_centers_covering,
    pnbd,
    pnbd_frontier,
)

coords = st.tuples(
    st.integers(min_value=-10, max_value=10),
    st.integers(min_value=-10, max_value=10),
)
radii = st.integers(min_value=1, max_value=4)


class TestNbd:
    def test_excludes_center_by_default(self):
        assert (0, 0) not in nbd((0, 0), 2)

    def test_include_center(self):
        assert (0, 0) in nbd((0, 0), 2, include_center=True)

    @given(coords, radii)
    def test_cardinality_linf(self, c, r):
        assert len(nbd(c, r)) == (2 * r + 1) ** 2 - 1

    @given(coords, radii)
    def test_all_within(self, c, r):
        m = get_metric("linf")
        assert all(m.within(c, p, r) for p in nbd(c, r))


class TestPnbd:
    @given(coords, radii)
    def test_pnbd_contains_nbd_and_center(self, c, r):
        ring = set(pnbd(c, r))
        assert set(nbd(c, r)) <= ring
        assert c in ring

    @given(coords, radii)
    def test_frontier_disjoint_from_nbd(self, c, r):
        inner = set(nbd(c, r, include_center=True))
        assert not (set(pnbd_frontier(c, r)) & inner)

    @given(radii)
    def test_frontier_structure_linf(self, r):
        """The L-inf frontier is the distance-(r+1) ring minus its four
        corners: 4(2r+3) - 4 - 4 = 8r + 4 nodes."""
        frontier = pnbd_frontier((0, 0), r)
        assert len(frontier) == 8 * r + 4
        for x, y in frontier:
            assert max(abs(x), abs(y)) == r + 1
            assert not (abs(x) == r + 1 and abs(y) == r + 1)

    def test_matches_paper_definition(self):
        """pnbd is the union of the four perturbed neighborhoods."""
        r = 2
        expected = set()
        for sx, sy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            expected |= set(nbd((sx, sy), r))
        assert set(pnbd((0, 0), r)) == expected


class TestCoveringCenters:
    def test_single_point(self):
        centers = nbd_centers_covering([(0, 0)], 1)
        assert len(centers) == 9  # the closed ball around the point

    def test_pair_at_max_span(self):
        centers = nbd_centers_covering([(0, 0), (4, 0)], 2)
        assert centers == [(2, y) for y in range(-2, 3)]

    def test_uncoverable(self):
        assert nbd_centers_covering([(0, 0), (5, 0)], 2) == []
        assert not covered_by_single_nbd([(0, 0), (5, 0)], 2)

    @given(
        st.lists(coords, min_size=1, max_size=4),
        radii,
        st.sampled_from(["linf", "l2"]),
    )
    def test_centers_actually_cover(self, points, r, metric):
        m = get_metric(metric)
        for c in nbd_centers_covering(points, r, metric):
            assert all(m.within(c, p, r) for p in points)

    @given(st.lists(coords, min_size=1, max_size=3), radii)
    def test_exhaustive_against_bruteforce(self, points, r):
        """Compare against scanning the full bounding area."""
        m = get_metric("linf")
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        brute = [
            (x, y)
            for x in range(min(xs) - r, max(xs) + r + 1)
            for y in range(min(ys) - r, max(ys) + r + 1)
            if all(m.within((x, y), p, r) for p in points)
        ]
        assert nbd_centers_covering(points, r) == sorted(brute)

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            nbd_centers_covering([], 2)
