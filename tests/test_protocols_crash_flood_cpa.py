"""Tests for CrashFloodProtocol and CPAProtocol."""

import pytest

from repro.core.thresholds import (
    cpa_best_known_max_t,
    crash_linf_max_t,
    crash_linf_threshold,
    koo_impossibility_bound,
)
from repro.errors import ConfigurationError
from repro.experiments.scenarios import (
    byzantine_broadcast_scenario,
    crash_broadcast_scenario,
    recommended_torus,
)
from repro.grid.torus import Torus
from repro.protocols.base import CommittedMsg, SourceMsg
from repro.protocols.cpa import CPAProtocol
from repro.protocols.crash_flood import CrashFloodProtocol
from repro.protocols.registry import correct_process_map
from repro.radio.run import run_broadcast


def fault_free_run(protocol, r=1, value=1):
    torus = recommended_torus(r)
    correct = set(torus.nodes())
    processes = correct_process_map(torus, protocol, 0, (0, 0), value, correct)
    return run_broadcast(torus, processes, value, correct)


class TestCrashFlood:
    def test_fault_free_broadcast(self):
        out = fault_free_run("crash-flood")
        assert out.achieved
        # each node transmits at most twice (source msg + committed)
        assert out.messages <= 2 * len(out.correct_nodes)

    def test_commit_on_first_value(self):
        out = fault_free_run("crash-flood", value="payload")
        committed = out.result.committed()
        assert all(v == "payload" for v in committed.values())

    def test_below_threshold_succeeds(self):
        for r in (1, 2):
            sc = crash_broadcast_scenario(r=r, t=crash_linf_max_t(r))
            sc.validate()
            assert sc.run().achieved

    def test_at_threshold_partitions(self):
        for r in (1, 2):
            sc = crash_broadcast_scenario(
                r=r, t=crash_linf_threshold(r), enforce_budget=False
            )
            sc.validate()
            out = sc.run()
            assert out.safe and not out.live

    def test_staggered_crashes_never_worse_than_dead(self):
        """A node that crashes later only helps: staggered crash runs
        reach at least the dead-from-start coverage."""
        r = 1
        dead = crash_broadcast_scenario(
            r=r, t=crash_linf_threshold(r), enforce_budget=False
        ).run()
        for seed in range(3):
            stag = crash_broadcast_scenario(
                r=r,
                t=crash_linf_threshold(r),
                enforce_budget=False,
                staggered_max_round=3,
                seed=seed,
            ).run()
            assert len(stag.undecided) <= len(dead.undecided)

    def test_random_placements_always_succeed_below_threshold(self):
        for seed in range(3):
            sc = crash_broadcast_scenario(
                r=1, t=crash_linf_max_t(1), placement="random", seed=seed
            )
            sc.validate()
            assert sc.run().achieved

    def test_crash_flood_is_byzantine_unsafe(self):
        """One liar defeats commit-on-first-receipt: wrong commits appear.

        This is why Section VII's protocol is crash-stop only."""
        sc = byzantine_broadcast_scenario(
            r=1,
            t=1,
            protocol="crash-flood",
            strategy="liar",
            placement="random",
        )
        out = sc.run()
        assert not out.safe


class TestCPA:
    def test_fault_free_broadcast(self):
        assert fault_free_run("cpa").achieved

    def test_source_neighbors_commit_directly(self):
        torus = recommended_torus(1)
        correct = set(torus.nodes())
        processes = correct_process_map(torus, "cpa", 2, (0, 0), 1, correct)
        out = run_broadcast(torus, processes, 1, correct)
        # with t=2 > best known for r=1 CPA may stall... but source
        # neighbors must still commit (direct hearing).
        committed = out.result.committed()
        for nb in torus.neighbors((0, 0)):
            assert committed.get(nb) == 1

    def test_duplicity_first_announcement_wins(self):
        """A duplicitous announcer is counted once, with its first value."""
        sc = byzantine_broadcast_scenario(
            r=1, t=1, protocol="cpa", strategy="duplicitous"
        )
        sc.validate()
        out = sc.run()
        assert out.safe

    def test_duplicity_is_detected_by_all_neighbors(self):
        """Section V: 'if it were to attempt sending contradicting
        messages ... its duplicity would stand detected' -- by every
        neighbor that was still listening."""
        sc = byzantine_broadcast_scenario(
            r=1, t=1, protocol="bv-two-hop", strategy="duplicitous"
        )
        sc.validate()
        out = sc.run()
        liars = sc.faulty_nodes
        detections = 0
        for node, proc in out.result.processes.items():
            if node in liars:
                continue
            flagged = getattr(proc, "detected_duplicity", set())
            for f in flagged:
                canon = sc.topology.canonical(f)
                assert canon in liars  # no false accusations
                detections += 1
        assert detections > 0  # somebody caught each visible liar

    def test_safe_under_liar_even_above_threshold(self):
        sc = byzantine_broadcast_scenario(
            r=1,
            t=koo_impossibility_bound(1),
            protocol="cpa",
            strategy="liar",
        )
        sc.validate()
        out = sc.run()
        assert out.safe  # never a wrong commit, even when liveness dies

    def test_succeeds_at_best_known_bound(self):
        for r in (1, 2):
            t = cpa_best_known_max_t(r)
            for strategy in ("silent", "liar"):
                sc = byzantine_broadcast_scenario(
                    r=r, t=t, protocol="cpa", strategy=strategy
                )
                sc.validate()
                assert sc.run().achieved, (r, t, strategy)

    def test_blocked_at_impossibility_bound(self):
        for r in (1, 2):
            sc = byzantine_broadcast_scenario(
                r=r,
                t=koo_impossibility_bound(r),
                protocol="cpa",
                strategy="silent",
            )
            sc.validate()
            out = sc.run()
            assert out.safe and not out.live

    def test_negative_t_rejected(self):
        with pytest.raises(ConfigurationError):
            CPAProtocol(-1, (0, 0))

    def test_source_without_value_rejected(self):
        torus = Torus.square(7, 1)
        proc = CPAProtocol(1, (0, 0))  # no source_value
        from repro.radio.engine import Engine

        eng = Engine(torus, {(0, 0): proc})
        with pytest.raises(ConfigurationError, match="no source_value"):
            eng.run()

    def test_ignores_heard_messages(self):
        """CPA is the *simple* protocol: HEARD reports must not count."""
        from repro.protocols.base import HeardMsg
        from repro.radio.messages import Envelope
        from repro.radio.engine import Engine

        torus = Torus.square(7, 1)
        proc = CPAProtocol(0, (3, 3))
        eng = Engine(torus, {(0, 0): proc})
        ctx = eng.context_of((0, 0))
        env = Envelope((0, 1), HeardMsg(origin=(1, 1), value=1), 0, 0, 0)
        proc.on_receive(ctx, env)
        assert proc.committed_value() is None

    def test_commit_needs_t_plus_one_distinct_neighbors(self):
        from repro.radio.messages import Envelope
        from repro.radio.engine import Engine

        torus = Torus.square(7, 1)
        proc = CPAProtocol(1, (3, 3))
        eng = Engine(torus, {(0, 0): proc})
        ctx = eng.context_of((0, 0))
        env1 = Envelope((0, 1), CommittedMsg(1), 0, 0, 0)
        proc.on_receive(ctx, env1)
        assert proc.committed_value() is None  # one announcement: not enough
        proc.on_receive(ctx, env1)  # duplicate sender: still not enough
        assert proc.committed_value() is None
        env2 = Envelope((1, 0), CommittedMsg(1), 1, 0, 0)
        proc.on_receive(ctx, env2)
        assert proc.committed_value() == 1

    def test_mixed_values_tally_separately(self):
        from repro.radio.messages import Envelope
        from repro.radio.engine import Engine

        torus = Torus.square(7, 1)
        proc = CPAProtocol(1, (3, 3))
        eng = Engine(torus, {(0, 0): proc})
        ctx = eng.context_of((0, 0))
        proc.on_receive(ctx, Envelope((0, 1), CommittedMsg(0), 0, 0, 0))
        proc.on_receive(ctx, Envelope((1, 0), CommittedMsg(1), 1, 0, 0))
        assert proc.committed_value() is None
        proc.on_receive(ctx, Envelope((1, 1), CommittedMsg(1), 2, 0, 0))
        assert proc.committed_value() == 1

    def test_fake_source_msg_ignored(self):
        from repro.radio.messages import Envelope
        from repro.radio.engine import Engine

        torus = Torus.square(7, 1)
        proc = CPAProtocol(1, (3, 3))
        eng = Engine(torus, {(0, 0): proc})
        ctx = eng.context_of((0, 0))
        proc.on_receive(ctx, Envelope((0, 1), SourceMsg(0), 0, 0, 0))
        assert proc.committed_value() is None
