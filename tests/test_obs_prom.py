"""Prometheus exposition tests: deterministic rendering, strict
parsing, and render/parse round-trip identity."""

from __future__ import annotations

import math

import pytest

from repro.obs.prom import (
    MetricFamily,
    PromFormatError,
    Sample,
    parse_metrics,
    render_metrics,
    validate_metrics_text,
)


def families():
    """A small, representative family set."""
    counter = MetricFamily(
        "repro_units_total", "counter", "Work units finished"
    )
    counter.add(3, {"outcome": "computed"}).add(7, {"outcome": "cached"})
    gauge = MetricFamily(
        "repro_backend_queue_depth", "gauge", "Units pending"
    ).add(2.5, {"backend": "socket"})
    return [counter, gauge]


class TestRender:
    def test_help_and_type_headers(self):
        text = render_metrics(families())
        assert "# HELP repro_units_total Work units finished" in text
        assert "# TYPE repro_units_total counter" in text
        assert 'repro_units_total{outcome="computed"} 3' in text

    def test_rendering_is_deterministic(self):
        assert render_metrics(families()) == render_metrics(families())

    def test_integral_floats_render_bare(self):
        text = render_metrics(
            [MetricFamily("x_total", "counter", "x").add(4.0)]
        )
        assert "x_total 4\n" in text

    def test_special_values(self):
        fam = (
            MetricFamily("x", "gauge", "x")
            .add(math.inf)
            .add(-math.inf)
            .add(math.nan)
        )
        text = render_metrics([fam])
        assert "x +Inf" in text and "x -Inf" in text and "x NaN" in text

    def test_label_escaping_round_trips(self):
        fam = MetricFamily("x", "gauge", "x").add(
            1, {"path": 'a"b\\c\nd'}
        )
        back = parse_metrics(render_metrics([fam]))
        assert back["x"].samples[0].labels == {"path": 'a"b\\c\nd'}

    def test_bad_metric_name_rejected(self):
        with pytest.raises(PromFormatError, match="invalid metric name"):
            render_metrics([MetricFamily("bad name", "gauge", "x").add(1)])

    def test_bad_type_rejected(self):
        with pytest.raises(PromFormatError, match="invalid metric type"):
            render_metrics([MetricFamily("x", "rainbow", "x").add(1)])

    def test_bad_label_name_rejected(self):
        fam = MetricFamily("x", "gauge", "x").add(1, {"bad-label": "v"})
        with pytest.raises(PromFormatError, match="invalid label name"):
            render_metrics([fam])

    def test_empty_render(self):
        assert render_metrics([]) == ""


class TestParse:
    def test_round_trip_byte_identity(self):
        text = render_metrics(families())
        assert render_metrics(list(parse_metrics(text).values())) == text

    def test_untyped_bare_sample_accepted(self):
        fams = parse_metrics("plain_metric 1\n")
        assert fams["plain_metric"].mtype == "untyped"

    def test_histogram_suffixes_fold_into_family(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="1"} 3\n'
            'lat_bucket{le="+Inf"} 5\n'
            "lat_sum 7.5\n"
            "lat_count 5\n"
        )
        fams = parse_metrics(text)
        assert set(fams) == {"lat"}
        assert len(fams["lat"].samples) == 4

    def test_malformed_sample_rejected(self):
        with pytest.raises(PromFormatError, match="malformed sample"):
            parse_metrics("this is not a sample\n")

    def test_malformed_labels_rejected(self):
        with pytest.raises(PromFormatError, match="malformed labels"):
            parse_metrics('x{key=unquoted} 1\n')

    def test_unparseable_value_rejected(self):
        with pytest.raises(PromFormatError, match="unparseable value"):
            parse_metrics("x banana\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(PromFormatError, match="unknown metric type"):
            parse_metrics("# TYPE x rainbow\n")

    def test_error_carries_line_number(self):
        with pytest.raises(PromFormatError, match="line 2"):
            parse_metrics("x 1\nx banana\n")


class TestValidate:
    def test_counts_families_and_samples(self):
        assert validate_metrics_text(render_metrics(families())) == (2, 3)

    def test_empty_text_rejected(self):
        with pytest.raises(PromFormatError, match="no metric families"):
            validate_metrics_text("")

    def test_sampleless_family_rejected(self):
        with pytest.raises(PromFormatError, match="has no samples"):
            validate_metrics_text(
                "# HELP x nothing\n# TYPE x gauge\ny 1\n"
            )

    def test_sample_dataclass_shape(self):
        sample = Sample(name="x", labels={"a": "b"}, value=1.0)
        assert (sample.name, sample.labels, sample.value) == (
            "x",
            {"a": "b"},
            1.0,
        )
