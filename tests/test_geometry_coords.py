"""Tests for repro.geometry.coords."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.coords import (
    ORIGIN,
    UNIT_STEPS,
    Point,
    add,
    manhattan,
    neg,
    scale,
    sub,
)

coords = st.tuples(
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=-50, max_value=50),
)


class TestPoint:
    def test_point_equals_tuple(self):
        assert Point(3, -1) == (3, -1)
        assert hash(Point(3, -1)) == hash((3, -1))

    def test_point_in_set_with_tuples(self):
        s = {(1, 2), (3, 4)}
        assert Point(1, 2) in s

    def test_addition(self):
        assert Point(1, 2) + (3, 4) == Point(4, 6)

    def test_subtraction(self):
        assert Point(5, 5) - (2, 3) == Point(3, 2)

    def test_negation(self):
        assert -Point(2, -3) == Point(-2, 3)

    def test_fields(self):
        p = Point(7, 9)
        assert p.x == 7 and p.y == 9


class TestVectorHelpers:
    @given(coords, coords)
    def test_add_sub_inverse(self, a, b):
        assert sub(add(a, b), b) == a

    @given(coords)
    def test_neg_involution(self, a):
        assert neg(neg(a)) == a

    @given(coords)
    def test_scale_zero(self, a):
        assert scale(a, 0) == (0, 0)

    @given(coords, st.integers(min_value=-5, max_value=5))
    def test_scale_matches_repeated_add(self, a, k):
        expected = (a[0] * k, a[1] * k)
        assert scale(a, k) == expected

    @given(coords, coords)
    def test_manhattan_symmetry(self, a, b):
        assert manhattan(a, b) == manhattan(b, a)

    @given(coords, coords, coords)
    def test_manhattan_triangle(self, a, b, c):
        assert manhattan(a, c) <= manhattan(a, b) + manhattan(b, c)

    def test_constants(self):
        assert ORIGIN == (0, 0)
        assert len(UNIT_STEPS) == 4
        assert all(manhattan((0, 0), s) == 1 for s in UNIT_STEPS)
