"""Cache-key-soundness pass tests.

The load-bearing case runs against the *shipped* ``repro/exec/specs.py``:
as checked in (with ``collect_metrics`` exempted) the pass is silent,
and deleting the ``KEY_EXEMPT_FIELDS`` entry makes it fail -- the
negative test the issue's acceptance criteria demand.  Synthetic
fixtures then pin the read-collection and exemption-hygiene behaviors.
"""

import os
import re

from repro.lint import Severity
from tests.test_lint_rules import run_lint

RULE = ["cache-key-soundness"]
SPECS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "src", "repro", "exec", "specs.py"
)


def errors(report):
    return [
        f
        for f in report.findings
        if f.rule_id == "cache-key-soundness" and f.severity is Severity.ERROR
    ]


class TestShippedSpecs:
    def test_shipped_specs_is_sound(self, tmp_path):
        source = open(SPECS_PATH).read()
        report = run_lint(
            tmp_path, {"repro/exec/specs.py": source}, RULE
        )
        assert errors(report) == []

    def test_removing_collect_metrics_exemption_fails(self, tmp_path):
        """Deleting the annotation entry must break the pass: that is
        the whole point of making exemptions explicit."""
        source = open(SPECS_PATH).read()
        stripped = re.sub(
            r'    "collect_metrics": \(\n(?:        .*\n)+    \),\n',
            "",
            source,
        )
        assert stripped != source, "exemption entry not found to delete"
        report = run_lint(
            tmp_path, {"repro/exec/specs.py": stripped}, RULE
        )
        found = errors(report)
        assert len(found) >= 1
        assert any("collect_metrics" in f.message for f in found)

    def test_removing_topology_conditional_keying_fails(self, tmp_path):
        """The scenario-axis fields are keyed *conditionally* (the
        default level is omitted for key stability); deleting the
        non-default re-add must fail the pass, because ``topology`` is
        read in ``build_scenario`` and is not exempt."""
        source = open(SPECS_PATH).read()
        stripped = re.sub(
            r'        if self\.topology != "torus":\n'
            r'            payload\["topology"\] = self\.topology\n',
            "",
            source,
        )
        assert stripped != source, "topology re-add not found to delete"
        report = run_lint(
            tmp_path, {"repro/exec/specs.py": stripped}, RULE
        )
        found = errors(report)
        assert any("topology" in f.message for f in found), found

    def test_removing_channel_conditional_keying_fails(self, tmp_path):
        source = open(SPECS_PATH).read()
        stripped = re.sub(
            r'        if self\.channel != "ideal":\n'
            r'            payload\["channel"\] = self\.channel\n',
            "",
            source,
        )
        assert stripped != source, "channel re-add not found to delete"
        report = run_lint(
            tmp_path, {"repro/exec/specs.py": stripped}, RULE
        )
        found = errors(report)
        assert any("channel" in f.message for f in found), found


class TestSyntheticFixtures:
    SPEC_PREAMBLE = (
        "import json\n"
        "from dataclasses import dataclass, fields\n"
        "KEY_EXEMPT_FIELDS = {}\n"
        "@dataclass(frozen=True)\n"
        "class ScenarioSpec:\n"
        "    kind: str\n"
        "    r: int\n"
        "    debug_label: str = ''\n"
        "    def key_payload(self):\n"
        "        return {\n"
        "            f.name: getattr(self, f.name)\n"
        "            for f in fields(self)\n"
        "            if f.name not in ('debug_label',)\n"
        "        }\n"
        "    def scenario_key(self):\n"
        "        return json.dumps(self.key_payload(), sort_keys=True)\n"
    )

    def test_unkeyed_read_in_helper_is_flagged(self, tmp_path):
        """A read through a helper (not run_trial itself) is caught --
        the collection is over the whole call closure."""
        report = run_lint(
            tmp_path,
            {
                "repro/exec/specs.py": (
                    self.SPEC_PREAMBLE
                    + "def describe(spec: ScenarioSpec):\n"
                    "    return spec.debug_label\n"
                    "def run_trial(spec: ScenarioSpec, seed):\n"
                    "    return {'label': describe(spec)}\n"
                ),
            },
            RULE,
        )
        found = errors(report)
        assert len(found) == 1
        assert "debug_label" in found[0].message
        # anchored at the read site inside the helper
        assert found[0].line == 18

    def test_keyed_reads_are_clean(self, tmp_path):
        report = run_lint(
            tmp_path,
            {
                "repro/exec/specs.py": (
                    self.SPEC_PREAMBLE
                    + "def run_trial(spec: ScenarioSpec, seed):\n"
                    "    return {'kind': spec.kind, 'r': spec.r}\n"
                ),
            },
            RULE,
        )
        assert errors(report) == []

    def test_exempted_read_is_clean(self, tmp_path):
        source = self.SPEC_PREAMBLE.replace(
            "KEY_EXEMPT_FIELDS = {}\n",
            "KEY_EXEMPT_FIELDS = {\n"
            "    'debug_label': 'display only: never touches the run',\n"
            "}\n",
        ) + (
            "def run_trial(spec: ScenarioSpec, seed):\n"
            "    return {'label': spec.debug_label}\n"
        )
        report = run_lint(
            tmp_path, {"repro/exec/specs.py": source}, RULE
        )
        assert errors(report) == []

    def test_stale_exemption_is_warned(self, tmp_path):
        """An exemption for a field that is keyed (or never read) is
        hygiene rot: reported as a warning, not an error."""
        source = self.SPEC_PREAMBLE.replace(
            "KEY_EXEMPT_FIELDS = {}\n",
            "KEY_EXEMPT_FIELDS = {\n"
            "    'kind': 'stale reason',\n"
            "}\n",
        ) + (
            "def run_trial(spec: ScenarioSpec, seed):\n"
            "    return {'kind': spec.kind}\n"
        )
        report = run_lint(
            tmp_path, {"repro/exec/specs.py": source}, RULE
        )
        assert errors(report) == []
        warnings = [
            f
            for f in report.findings
            if f.rule_id == "cache-key-soundness"
            and f.severity is Severity.WARNING
        ]
        assert len(warnings) >= 1
        assert any("kind" in f.message for f in warnings)
