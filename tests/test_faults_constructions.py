"""Tests for repro.faults.constructions (the impossibility placements)."""

import pytest

from repro.analysis.reachability import crash_broadcast_coverage
from repro.core.thresholds import crash_linf_threshold, koo_impossibility_bound
from repro.errors import ConfigurationError
from repro.experiments.scenarios import strip_torus
from repro.faults.constructions import (
    crash_strip,
    far_side_nodes,
    half_density_strip,
    puncture,
    torus_byzantine_strip,
    torus_crash_partition,
)
from repro.faults.placement import max_faults_per_nbd


class TestCrashStrip:
    def test_shape(self):
        s = crash_strip(3, 2, range(0, 5))
        assert s == {(x, y) for x in (3, 4) for y in range(5)}

    def test_per_nbd_bound_matches_theorem4(self):
        """A full-height width-r strip puts exactly r(2r+1) faults in the
        worst neighborhood."""
        for r in (1, 2, 3):
            s = crash_strip(0, r, range(-4 * r, 4 * r + 1))
            worst, _ = max_faults_per_nbd(s, r)
            assert worst == crash_linf_threshold(r)


class TestHalfDensityStrip:
    def test_checkerboard(self):
        s = half_density_strip(0, 2, range(0, 4), parity=0)
        assert all((x + y) % 2 == 0 for x, y in s)

    def test_parity_partition(self):
        ys = range(0, 6)
        all_cells = crash_strip(0, 2, ys)
        s0 = half_density_strip(0, 2, ys, parity=0)
        s1 = half_density_strip(0, 2, ys, parity=1)
        assert s0 | s1 == all_cells
        assert not (s0 & s1)

    def test_per_nbd_bound_matches_koo(self):
        """The half-density strip's worst neighborhood holds exactly
        ceil(r(2r+1)/2) faults -- Koo's impossibility bound."""
        for r in (1, 2, 3, 4):
            s = half_density_strip(0, r, range(-4 * r, 4 * r + 1))
            worst, _ = max_faults_per_nbd(s, r)
            assert worst == koo_impossibility_bound(r)

    def test_invalid_parity(self):
        with pytest.raises(ConfigurationError):
            half_density_strip(0, 2, range(3), parity=2)


class TestTorusConstructions:
    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_crash_partition_partitions(self, r):
        torus = strip_torus(r)
        faults = torus_crash_partition(torus)
        report = crash_broadcast_coverage(torus, (0, 0), faults)
        assert not report.complete
        far = far_side_nodes(torus)
        correct_far = far - faults
        assert correct_far, "construction must leave far-side correct nodes"
        assert correct_far <= set(report.unreached_correct)

    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_crash_partition_respects_threshold(self, r):
        torus = strip_torus(r)
        faults = torus_crash_partition(torus)
        worst, _ = max_faults_per_nbd(
            faults, r, metric=torus.metric, topology=torus
        )
        assert worst == crash_linf_threshold(r)

    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_byzantine_strip_respects_koo_bound(self, r):
        torus = strip_torus(r)
        faults = torus_byzantine_strip(torus)
        worst, _ = max_faults_per_nbd(
            faults, r, metric=torus.metric, topology=torus
        )
        assert worst == koo_impossibility_bound(r)

    def test_source_never_faulty(self):
        torus = strip_torus(2)
        assert (0, 0) not in torus_crash_partition(torus)
        assert (0, 0) not in torus_byzantine_strip(torus)

    def test_too_small_torus_rejected(self):
        from repro.grid.torus import Torus

        small = Torus.square(7, 2)  # < 2*(3r+1) = 14
        with pytest.raises(ConfigurationError, match="too small"):
            torus_crash_partition(small)

    def test_puncture_heals_partition(self):
        r = 1
        torus = strip_torus(r)
        faults = torus_crash_partition(torus)
        # open a one-node hole in each strip
        strips_x = sorted({x for x, _ in faults})
        holes = [next(f for f in sorted(faults) if f[0] == x) for x in strips_x]
        healed = puncture(faults, holes)
        report = crash_broadcast_coverage(torus, (0, 0), healed)
        assert report.complete

    def test_far_side_between_strips(self):
        torus = strip_torus(2)
        far = far_side_nodes(torus)
        faults = torus_crash_partition(torus)
        assert far
        assert not (far & faults)
        assert (0, 0) not in far
