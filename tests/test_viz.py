"""Tests for repro.viz.ascii_art."""

from repro.grid.torus import Torus
from repro.viz.ascii_art import render_commit_wave, render_fault_map, render_grid


class TestRenderGrid:
    def test_dimensions(self):
        t = Torus.square(5, 1)
        out = render_grid(t, {})
        lines = out.splitlines()
        assert len(lines) == 5
        assert all(len(line) == 5 for line in lines)

    def test_y_grows_upward(self):
        t = Torus.square(3, 1)
        out = render_grid(t, {(0, 2): "T", (0, 0): "B"})
        lines = out.splitlines()
        assert lines[0][0] == "T"
        assert lines[-1][0] == "B"

    def test_marks_canonicalized(self):
        t = Torus.square(3, 1)
        out = render_grid(t, {(-1, -1): "W"})
        assert out.splitlines()[0][2] == "W"  # wraps to (2, 2): top-right


class TestFaultMap:
    def test_source_and_faults(self):
        t = Torus.square(5, 1)
        out = render_fault_map(t, [(2, 2)], source=(0, 0))
        assert out.count("#") == 1
        assert out.count("S") == 1
        assert out.count(".") == 23


class TestRegionArt:
    def test_m_decomposition_markers(self):
        from repro.viz.regions_art import render_m_decomposition

        out = render_m_decomposition(0, 0, 3)
        body = "\n".join(out.split("\n")[:-1])  # strip the legend line
        assert "P" in body and "o" in body
        assert body.count("R") == 12  # r(r+1) = 12 region-R points
        assert body.count("1") == 3  # |S1| = r
        assert body.count("U") == 3  # r(r-1)/2
        assert body.count("2") == 3

    def test_u_construction_counts(self):
        from repro.core.regions import expected_U_path_counts
        from repro.viz.regions_art import render_u_construction

        r, p, q = 3, 1, 2
        out = render_u_construction(0, 0, r, p, q)
        claims = expected_U_path_counts(r, p, q)
        body = "\n".join(out.split("\n")[:-2])  # strip the 2 legend lines
        # highlights (N/P/*/o) may overlay at most a couple of region cells
        assert claims["A"] - 2 <= body.count("A") <= claims["A"]
        assert claims["C"] - 2 <= body.count("c") <= claims["C"]
        assert claims["D"] - 2 <= body.count("d") <= claims["D"]
        assert "N" in body and "P" in body and "*" in body

    def test_s1_construction_counts(self):
        from repro.core.regions import expected_S1_path_counts
        from repro.viz.regions_art import render_s1_construction

        r, p = 3, 1
        out = render_s1_construction(0, 0, r, p)
        claims = expected_S1_path_counts(r, p)
        body = "\n".join(out.split("\n")[:-2])
        assert claims["J"] - 2 <= body.count("J") <= claims["J"]
        assert claims["K"] - 2 <= body.count("k") <= claims["K"]


class TestCommitWave:
    def test_committed_marks(self):
        t = Torus.square(3, 1)
        out = render_commit_wave(
            t, {(1, 1): "v", (2, 2): "wrong"}, value="v", faulty=[(0, 1)]
        )
        assert "o" in out  # correct commit
        assert "X" in out  # wrong commit
        assert "#" in out  # fault
        assert "S" in out

    def test_rounds_rendering(self):
        t = Torus.square(3, 1)
        out = render_commit_wave(
            t,
            {(1, 1): "v", (2, 2): "v"},
            value="v",
            commit_rounds={(1, 1): 3, (2, 2): 12},
        )
        assert "3" in out
        assert "2" in out  # 12 mod 10

    def test_fault_overrides_commit_mark(self):
        t = Torus.square(3, 1)
        out = render_commit_wave(
            t, {(1, 1): "v"}, value="v", faulty=[(1, 1)]
        )
        assert "o" not in out
        assert "#" in out
