"""Tests for repro.protocols.evidence and repro.protocols.registry."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry.metrics import LINF, get_metric
from repro.grid.torus import Torus
from repro.protocols.evidence import CenterIndex, covering_centers
from repro.protocols.registry import (
    PROTOCOLS,
    correct_process_map,
    make_protocol,
    protocol_names,
)


class TestCoveringCenters:
    def test_matches_grid_helper(self):
        from repro.grid.neighborhoods import nbd_centers_covering

        pts = [(0, 0), (2, 1), (1, 2)]
        assert sorted(covering_centers(pts, 2, LINF)) == nbd_centers_covering(
            pts, 2
        )

    def test_point_covers_itself(self):
        assert (0, 0) in covering_centers([(0, 0)], 1, LINF)

    def test_uncoverable(self):
        assert covering_centers([(0, 0), (10, 0)], 2, LINF) == []


class TestCenterIndex:
    def test_add_and_query(self):
        idx = CenterIndex(1, LINF)
        chain = frozenset({(1, 0)})
        assert idx.add("v", chain)
        assert chain in idx.chains_at("v", (0, 0))
        assert chain in idx.chains_at("v", (1, 1))
        assert idx.chains_at("v", (5, 5)) == []

    def test_duplicate_rejected(self):
        idx = CenterIndex(1, LINF)
        chain = frozenset({(1, 0)})
        assert idx.add("v", chain)
        assert not idx.add("v", chain)

    def test_same_chain_different_keys(self):
        idx = CenterIndex(1, LINF)
        chain = frozenset({(1, 0)})
        assert idx.add("a", chain)
        assert idx.add("b", chain)

    def test_dirty_tracking(self):
        idx = CenterIndex(1, LINF)
        idx.add("v", frozenset({(0, 0)}))
        dirty = idx.pop_dirty()
        assert dirty
        assert all(key == "v" for key, _ in dirty)
        assert idx.pop_dirty() == []  # drained

    def test_anchor_points_constrain_centers(self):
        idx = CenterIndex(1, LINF)
        chain = frozenset({(1, 0)})
        idx.add("v", chain, anchor_points=((2, 1),))
        # centers must cover both (1,0) and (2,1)
        for _, center in [("v", c) for c in [(1, 0), (1, 1), (2, 0), (2, 1)]]:
            pass
        assert idx.chains_at("v", (0, 0)) == []  # (0,0) misses the anchor
        assert chain in idx.chains_at("v", (1, 1))

    def test_keys(self):
        idx = CenterIndex(1, LINF)
        idx.add("x", frozenset({(0, 0)}))
        assert idx.keys() == ["x"]


class TestRegistry:
    def test_names(self):
        assert set(protocol_names()) == {
            "crash-flood",
            "cpa",
            "bv-two-hop",
            "bv-indirect",
            "bv-earmarked",
        }
        assert set(PROTOCOLS) == set(protocol_names())

    def test_make_each(self):
        for name in protocol_names():
            proc = make_protocol(name, 1, (0, 0))
            assert proc.t == 1

    def test_make_with_kwargs(self):
        proc = make_protocol("bv-indirect", 1, (0, 0), max_relays=2)
        assert proc.max_relays == 2

    def test_unknown_protocol(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            make_protocol("rumor-mill", 1, (0, 0))

    def test_correct_process_map(self):
        torus = Torus.square(7, 1)
        correct = {(0, 0), (1, 1), (2, 2)}
        procs = correct_process_map(torus, "cpa", 1, (0, 0), 42, correct)
        assert set(procs) == correct
        assert procs[(0, 0)].source_value == 42
        assert procs[(1, 1)].source_value is None
        assert all(p.metric.name == "linf" for p in procs.values())

    def test_correct_process_map_canonicalizes(self):
        torus = Torus.square(7, 1)
        procs = correct_process_map(
            torus, "cpa", 1, (7, 7), 1, {(7, 7)}
        )  # wraps to (0,0)
        assert set(procs) == {(0, 0)}
        assert procs[(0, 0)].source_value == 1
