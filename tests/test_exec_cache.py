"""Tests for repro.exec.cache: hit/miss, invalidation, corruption
recovery, and the --no-cache bypass."""

from __future__ import annotations

import json

import pytest

from repro.exec import (
    ResultCache,
    ScenarioSpec,
    SweepExecutor,
    code_version_tag,
    content_key,
    unit_cache_key,
)

ROWS = [{"achieved": True, "safe": True, "rounds": 3}]


@pytest.fixture
def cache(tmp_path):
    """A fresh cache rooted in the test's temp directory."""
    return ResultCache(tmp_path / "cache")


class TestHitMiss:
    def test_miss_on_empty_cache(self, cache):
        assert cache.get("0" * 64) is None
        assert not cache.contains("0" * 64)

    def test_put_then_hit(self, cache):
        key = content_key({"x": 1})
        cache.put(key, ROWS)
        assert cache.get(key) == ROWS
        assert cache.contains(key)
        assert len(cache) == 1

    def test_distinct_keys_do_not_alias(self, cache):
        cache.put(content_key({"x": 1}), ROWS)
        assert cache.get(content_key({"x": 2})) is None

    def test_put_is_atomic_no_tmp_left_behind(self, cache):
        cache.put(content_key({"x": 1}), ROWS)
        assert not list(cache.root.glob("*.tmp"))


class TestInvalidation:
    SPEC = ScenarioSpec(kind="byzantine", r=1, t=1, trials=4)

    def test_param_change_changes_key(self):
        base = unit_cache_key(self.SPEC, 0, (0, 1))
        for changed in (
            ScenarioSpec(kind="byzantine", r=1, t=2, trials=4),
            ScenarioSpec(kind="byzantine", r=2, t=1, trials=4),
            ScenarioSpec(kind="byzantine", r=1, t=1, trials=4, strategy="liar"),
            ScenarioSpec(kind="byzantine", r=1, t=1, trials=4, max_rounds=99),
            ScenarioSpec(kind="crash", r=1, t=1, trials=4),
        ):
            assert unit_cache_key(changed, 0, (0, 1)) != base

    def test_root_seed_and_indices_change_key(self):
        base = unit_cache_key(self.SPEC, 0, (0, 1))
        assert unit_cache_key(self.SPEC, 1, (0, 1)) != base
        assert unit_cache_key(self.SPEC, 0, (2, 3)) != base

    def test_trials_alone_does_not_change_key(self):
        """Extending a sweep's trial count must reuse existing units:
        identity is (scenario, seed, indices), not the trial total."""
        more = ScenarioSpec(kind="byzantine", r=1, t=1, trials=40)
        assert unit_cache_key(more, 0, (0, 1)) == unit_cache_key(
            self.SPEC, 0, (0, 1)
        )

    def test_code_version_in_key(self, monkeypatch):
        base = unit_cache_key(self.SPEC, 0, (0, 1))
        monkeypatch.setattr(
            "repro.exec.executor.code_version_tag", lambda: "other-version"
        )
        assert unit_cache_key(self.SPEC, 0, (0, 1)) != base

    def test_stale_entry_invisible_after_param_change(self, cache):
        """End to end: cached results for one budget are never returned
        for another (the key embeds the scenario)."""
        executor = SweepExecutor(cache=cache)
        first = executor.run(
            [ScenarioSpec(kind="crash", r=1, t=1, trials=2,
                          protocol="crash-flood")]
        )
        changed = executor.run(
            [ScenarioSpec(kind="crash", r=1, t=2, trials=2,
                          protocol="crash-flood")]
        )
        assert changed.stats.cache_hits == 0
        assert first.rows != [] and changed.rows != []


class TestCorruptionRecovery:
    def test_truncated_json_is_a_miss_and_removed(self, cache):
        key = content_key({"x": 1})
        path = cache.put(key, ROWS)
        path.write_text('{"key": "' + key + '", "rows": [{"a"')
        assert cache.get(key) is None
        assert not path.exists()

    def test_wrong_embedded_key_rejected(self, cache):
        key = content_key({"x": 1})
        path = cache.put(key, ROWS)
        blob = json.loads(path.read_text())
        blob["key"] = "f" * 64
        path.write_text(json.dumps(blob))
        assert cache.get(key) is None

    def test_schema_violation_rejected(self, cache):
        key = content_key({"x": 1})
        path = cache.put(key, ROWS)
        path.write_text(json.dumps({"key": key, "rows": "not-a-list"}))
        assert cache.get(key) is None

    def test_executor_recomputes_over_corrupt_entry(self, cache):
        """A corrupted work-unit file must fall back to recompute --
        same rows, no crash."""
        spec = ScenarioSpec(
            kind="crash", r=1, t=1, trials=2, protocol="crash-flood"
        )
        executor = SweepExecutor(cache=cache)
        clean = executor.run([spec])
        assert clean.stats.cache_misses == 1
        for path in cache.root.glob("*.json"):
            path.write_text("garbage{{{")
        recovered = executor.run([spec])
        assert recovered.stats.cache_hits == 0
        assert recovered.stats.cache_misses == 1
        assert recovered.rows == clean.rows
        # and the recompute re-banked a valid entry
        assert executor.run([spec]).stats.cache_hits == 1


class TestBypass:
    def test_cacheless_executor_writes_nothing(self, tmp_path):
        spec = ScenarioSpec(
            kind="crash", r=1, t=1, trials=2, protocol="crash-flood"
        )
        result = SweepExecutor(cache=None).run([spec])
        assert result.stats.cache_enabled is False
        assert result.stats.cache_hits == 0
        assert list(tmp_path.iterdir()) == []

    def test_cli_no_cache_bypasses(self, tmp_path, monkeypatch, capsys):
        """``repro sweep --no-cache`` must neither read nor write the
        cache directory."""
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        args = [
            "sweep", "crash", "--r", "1", "--budgets", "0", "--trials", "1",
            "--cache-dir", str(cache_dir),
        ]
        assert main(args + ["--no-cache"]) == 0
        assert not cache_dir.exists()
        assert main(args) == 0  # cached run populates it
        assert cache_dir.exists() and len(list(cache_dir.glob("*.json"))) == 1
        before = {p: p.read_bytes() for p in cache_dir.glob("*.json")}
        assert main(args + ["--no-cache"]) == 0
        after = {p: p.read_bytes() for p in cache_dir.glob("*.json")}
        assert before == after

    def test_cli_resume_requires_cache(self, capsys):
        from repro.cli import main

        code = main(
            ["sweep", "crash", "--r", "1", "--budgets", "0",
             "--trials", "1", "--no-cache", "--resume"]
        )
        assert code == 2
        assert "--no-cache" in capsys.readouterr().err
