"""Tests for repro.exec.cache: hit/miss, invalidation, corruption
recovery, the sharded layout and flat-layout migration, write
durability (fsync + torn-file recovery), concurrent writers, and the
--no-cache bypass."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import (
    ResultCache,
    ScenarioSpec,
    SweepExecutor,
    code_version_tag,
    content_key,
    unit_cache_key,
)

ROWS = [{"achieved": True, "safe": True, "rounds": 3}]


@pytest.fixture
def cache(tmp_path):
    """A fresh cache rooted in the test's temp directory."""
    return ResultCache(tmp_path / "cache")


class TestHitMiss:
    def test_miss_on_empty_cache(self, cache):
        assert cache.get("0" * 64) is None
        assert not cache.contains("0" * 64)

    def test_put_then_hit(self, cache):
        key = content_key({"x": 1})
        cache.put(key, ROWS)
        assert cache.get(key) == ROWS
        assert cache.contains(key)
        assert len(cache) == 1

    def test_distinct_keys_do_not_alias(self, cache):
        cache.put(content_key({"x": 1}), ROWS)
        assert cache.get(content_key({"x": 2})) is None

    def test_put_is_atomic_no_tmp_left_behind(self, cache):
        cache.put(content_key({"x": 1}), ROWS)
        assert not list(cache.root.rglob("*.tmp"))

    def test_entries_land_in_their_shard(self, cache):
        key = content_key({"x": 1})
        path = cache.put(key, ROWS)
        assert path == cache.root / "shards" / key[:2] / f"{key}.json"
        assert path.exists()


class TestInvalidation:
    SPEC = ScenarioSpec(kind="byzantine", r=1, t=1, trials=4)

    def test_param_change_changes_key(self):
        base = unit_cache_key(self.SPEC, 0, (0, 1))
        for changed in (
            ScenarioSpec(kind="byzantine", r=1, t=2, trials=4),
            ScenarioSpec(kind="byzantine", r=2, t=1, trials=4),
            ScenarioSpec(kind="byzantine", r=1, t=1, trials=4, strategy="liar"),
            ScenarioSpec(kind="byzantine", r=1, t=1, trials=4, max_rounds=99),
            ScenarioSpec(kind="crash", r=1, t=1, trials=4),
        ):
            assert unit_cache_key(changed, 0, (0, 1)) != base

    def test_root_seed_and_indices_change_key(self):
        base = unit_cache_key(self.SPEC, 0, (0, 1))
        assert unit_cache_key(self.SPEC, 1, (0, 1)) != base
        assert unit_cache_key(self.SPEC, 0, (2, 3)) != base

    def test_trials_alone_does_not_change_key(self):
        """Extending a sweep's trial count must reuse existing units:
        identity is (scenario, seed, indices), not the trial total."""
        more = ScenarioSpec(kind="byzantine", r=1, t=1, trials=40)
        assert unit_cache_key(more, 0, (0, 1)) == unit_cache_key(
            self.SPEC, 0, (0, 1)
        )

    def test_code_version_in_key(self, monkeypatch):
        base = unit_cache_key(self.SPEC, 0, (0, 1))
        monkeypatch.setattr(
            "repro.exec.executor.code_version_tag", lambda: "other-version"
        )
        assert unit_cache_key(self.SPEC, 0, (0, 1)) != base

    def test_stale_entry_invisible_after_param_change(self, cache):
        """End to end: cached results for one budget are never returned
        for another (the key embeds the scenario)."""
        executor = SweepExecutor(cache=cache)
        first = executor.run(
            [ScenarioSpec(kind="crash", r=1, t=1, trials=2,
                          protocol="crash-flood")]
        )
        changed = executor.run(
            [ScenarioSpec(kind="crash", r=1, t=2, trials=2,
                          protocol="crash-flood")]
        )
        assert changed.stats.cache_hits == 0
        assert first.rows != [] and changed.rows != []


class TestCorruptionRecovery:
    def test_truncated_json_is_a_miss_and_removed(self, cache):
        key = content_key({"x": 1})
        path = cache.put(key, ROWS)
        path.write_text('{"key": "' + key + '", "rows": [{"a"')
        assert cache.get(key) is None
        assert not path.exists()

    def test_wrong_embedded_key_rejected(self, cache):
        key = content_key({"x": 1})
        path = cache.put(key, ROWS)
        blob = json.loads(path.read_text())
        blob["key"] = "f" * 64
        path.write_text(json.dumps(blob))
        assert cache.get(key) is None

    def test_schema_violation_rejected(self, cache):
        key = content_key({"x": 1})
        path = cache.put(key, ROWS)
        path.write_text(json.dumps({"key": key, "rows": "not-a-list"}))
        assert cache.get(key) is None

    def test_executor_recomputes_over_corrupt_entry(self, cache):
        """A corrupted work-unit file must fall back to recompute --
        same rows, no crash."""
        spec = ScenarioSpec(
            kind="crash", r=1, t=1, trials=2, protocol="crash-flood"
        )
        executor = SweepExecutor(cache=cache)
        clean = executor.run([spec])
        assert clean.stats.cache_misses == 1
        for path in list(cache.entry_paths()):
            path.write_text("garbage{{{")
        recovered = executor.run([spec])
        assert recovered.stats.cache_hits == 0
        assert recovered.stats.cache_misses == 1
        assert recovered.rows == clean.rows
        # and the recompute re-banked a valid entry
        assert executor.run([spec]).stats.cache_hits == 1


def _demote_to_flat(cache: ResultCache) -> int:
    """Rewrite a cache into the legacy flat layout (pre-shard repos)."""
    moved = 0
    for path in list(cache.entry_paths()):
        if path.parent != cache.root:
            os.replace(path, cache.root / path.name)
            moved += 1
    shards = cache.root / "shards"
    if shards.exists():
        for sub in sorted(shards.iterdir()):
            sub.rmdir()
        shards.rmdir()
    return moved


class TestShardedMigration:
    def test_flat_entry_is_a_hit_and_promoted(self, cache):
        """A valid legacy flat entry is read (100% hit) and atomically
        moved into its shard with its bytes preserved exactly."""
        key = content_key({"x": 1})
        cache.put(key, ROWS)
        original = cache.path_for(key).read_bytes()
        assert _demote_to_flat(cache) == 1
        assert cache.flat_path_for(key).exists()
        assert cache.get(key) == ROWS
        assert not cache.flat_path_for(key).exists()
        assert cache.path_for(key).read_bytes() == original

    def test_sweep_over_flat_cache_is_all_hits(self, cache):
        """End to end: a warm pre-shard cache serves a rerun at 100%
        hits with identical rows, converging to the sharded layout."""
        spec = ScenarioSpec(
            kind="crash", r=1, t=1, trials=4, protocol="crash-flood"
        )
        executor = SweepExecutor(cache=cache)
        cold = executor.run([spec])
        _demote_to_flat(cache)
        warm = executor.run([spec])
        assert warm.stats.cache_hits == warm.stats.units_total > 0
        assert warm.stats.cache_misses == 0
        assert warm.rows == cold.rows
        assert all(p.parent != cache.root for p in cache.entry_paths())

    def test_corrupt_flat_entry_is_a_miss_and_removed(self, cache):
        key = content_key({"x": 1})
        flat = cache.flat_path_for(key)
        cache.root.mkdir(parents=True, exist_ok=True)
        flat.write_text("garbage{{{")
        assert cache.get(key) is None
        assert not flat.exists()

    def test_len_counts_both_layouts(self, cache):
        cache.put(content_key({"x": 1}), ROWS)
        cache.put(content_key({"x": 2}), ROWS)
        assert len(cache) == 2
        # demote one entry to the flat layout: still two entries
        path = next(iter(cache.entry_paths()))
        os.replace(path, cache.root / path.name)
        assert len(cache) == 2


class TestDurability:
    def test_truncated_entry_mid_write_recomputes_cleanly(self, cache):
        """Crash injection: tear a unit file mid-write (truncate it) and
        assert the executor recomputes the unit cleanly -- same rows,
        torn file replaced by a valid one."""
        spec = ScenarioSpec(
            kind="crash", r=1, t=1, trials=2, protocol="crash-flood"
        )
        executor = SweepExecutor(cache=cache)
        clean = executor.run([spec])
        (victim,) = list(cache.entry_paths())
        blob = victim.read_bytes()
        victim.write_bytes(blob[: len(blob) // 2])  # torn write
        recovered = executor.run([spec])
        assert recovered.stats.cache_hits == 0
        assert recovered.stats.cache_misses == 1
        assert recovered.rows == clean.rows
        # the recompute re-banked a valid, byte-identical entry
        assert executor.run([spec]).stats.cache_hits == 1
        assert victim.read_bytes() == blob

    def test_torn_tmp_file_never_shadows_the_entry(self, cache):
        """A crash between staging and rename leaves only a ``.tmp``
        file; reads miss and the next put overwrites it."""
        key = content_key({"x": 1})
        cache.shard_for(key).mkdir(parents=True)
        tmp = cache.path_for(key).with_suffix(f".json.{os.getpid()}.tmp")
        tmp.write_text('{"key": "' + key + '", "rows": [{"a"')
        assert cache.get(key) is None
        cache.put(key, ROWS)
        assert cache.get(key) == ROWS
        assert not tmp.exists()


def _race_put(args):
    """Worker for the concurrent-writer race (module-level: fork/pickle)."""
    root, key, rows, barrier = args
    cache = ResultCache(root)
    barrier.wait()  # line both writers up on the same key
    cache.put(key, rows)


class TestConcurrentWriters:
    @settings(max_examples=5, deadline=None)
    @given(
        rows=st.lists(
            st.dictionaries(
                st.sampled_from(["achieved", "rounds", "messages"]),
                st.integers(min_value=0, max_value=99),
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_racing_writers_leave_a_serial_byte_identical_file(
        self, tmp_path_factory, rows
    ):
        """Two processes racing ``put`` on one key must leave exactly
        the file a serial write would have left, byte for byte."""
        base = tmp_path_factory.mktemp("race")
        key = content_key({"rows": rows})
        serial = ResultCache(base / "serial")
        expected = serial.put(key, rows).read_bytes()

        racy = ResultCache(base / "racy")
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(
                target=_race_put, args=((racy.root, key, rows, barrier),)
            )
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        assert racy.path_for(key).read_bytes() == expected
        assert racy.get(key) == rows


class TestBypass:
    def test_cacheless_executor_writes_nothing(self, tmp_path):
        spec = ScenarioSpec(
            kind="crash", r=1, t=1, trials=2, protocol="crash-flood"
        )
        result = SweepExecutor(cache=None).run([spec])
        assert result.stats.cache_enabled is False
        assert result.stats.cache_hits == 0
        assert list(tmp_path.iterdir()) == []

    def test_cli_no_cache_bypasses(self, tmp_path, monkeypatch, capsys):
        """``repro sweep --no-cache`` must neither read nor write the
        cache directory."""
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        args = [
            "sweep", "crash", "--r", "1", "--budgets", "0", "--trials", "1",
            "--cache-dir", str(cache_dir),
        ]
        assert main(args + ["--no-cache"]) == 0
        assert not cache_dir.exists()
        assert main(args) == 0  # cached run populates it
        assert cache_dir.exists()
        assert len(list(cache_dir.rglob("*.json"))) == 1
        before = {p: p.read_bytes() for p in cache_dir.rglob("*.json")}
        assert main(args + ["--no-cache"]) == 0
        after = {p: p.read_bytes() for p in cache_dir.rglob("*.json")}
        assert before == after

    def test_cli_resume_requires_cache(self, capsys):
        from repro.cli import main

        code = main(
            ["sweep", "crash", "--r", "1", "--budgets", "0",
             "--trials", "1", "--no-cache", "--resume"]
        )
        assert code == 2
        assert "--no-cache" in capsys.readouterr().err
