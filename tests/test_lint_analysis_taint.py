"""Nondeterminism-taint pass tests.

The acceptance fixture is the issue's own: an unseeded
``random.random()`` *two calls upstream* of ``run_trial`` must be
flagged, with the witness call path in the message.  The rest pins the
source catalog (time, urandom, uuid, numpy.random, set iteration, ``id()``), the
``derive_seed`` barrier, and the sink catalog (``Engine.run``,
``build_scenario``, adversary move kernels).
"""

from tests.test_lint_rules import run_lint

RULE = ["nondet-taint"]


def findings(report):
    return [f for f in report.findings if f.rule_id == "nondet-taint"]


class TestAcceptanceFixture:
    def test_unseeded_random_two_calls_upstream_of_run_trial(self, tmp_path):
        report = run_lint(
            tmp_path,
            {
                "repro/exec/specs.py": (
                    "from repro.util.jitter import jitter\n"
                    "def helper(spec):\n"
                    "    return jitter(spec)\n"
                    "def run_trial(spec, seed):\n"
                    "    return {'x': helper(spec)}\n"
                ),
                "repro/util/jitter.py": (
                    "import random\n"
                    "def jitter(spec):\n"
                    "    return random.random()\n"
                ),
            },
            RULE,
        )
        found = findings(report)
        assert len(found) == 1
        f = found[0]
        # anchored at the source site, not the sink
        assert f.module == "repro.util.jitter"
        assert f.line == 3
        assert "run_trial" in f.message
        # the witness path names every hop
        assert "helper" in f.message and "jitter" in f.message

    def test_derive_seed_barrier_sanctions_the_path(self, tmp_path):
        """The same shape is clean when randomness flows through the
        sanctioned breaker."""
        report = run_lint(
            tmp_path,
            {
                "repro/exec/seeds.py": (
                    "def derive_seed(root, key, index):\n"
                    "    return hash((root, key, index))\n"
                ),
                "repro/exec/specs.py": (
                    "import random\n"
                    "from repro.exec.seeds import derive_seed\n"
                    "def run_trial(spec, seed):\n"
                    "    rng = random.Random(derive_seed(0, 'k', 0))\n"
                    "    return rng.random()\n"
                ),
            },
            RULE,
        )
        assert findings(report) == []


class TestSourceCatalog:
    def _lint_source_in_sink(self, tmp_path, body, extra_imports=""):
        return run_lint(
            tmp_path,
            {
                "repro/exec/specs.py": (
                    f"{extra_imports}"
                    "def run_trial(spec, seed):\n"
                    f"    {body}\n"
                ),
            },
            RULE,
        )

    def test_time_source(self, tmp_path):
        report = self._lint_source_in_sink(
            tmp_path, "return time.time()", "import time\n"
        )
        assert len(findings(report)) == 1

    def test_urandom_source(self, tmp_path):
        report = self._lint_source_in_sink(
            tmp_path, "return os.urandom(8)", "import os\n"
        )
        assert len(findings(report)) == 1

    def test_uuid_source(self, tmp_path):
        report = self._lint_source_in_sink(
            tmp_path, "return uuid.uuid4()", "import uuid\n"
        )
        assert len(findings(report)) == 1

    def test_set_iteration_source(self, tmp_path):
        report = self._lint_source_in_sink(
            tmp_path, "return [x for x in {1, 2, 3}]"
        )
        assert len(findings(report)) == 1

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        report = self._lint_source_in_sink(
            tmp_path, "return [x for x in sorted({1, 2, 3})]"
        )
        assert findings(report) == []

    def test_seeded_rng_is_clean(self, tmp_path):
        report = self._lint_source_in_sink(
            tmp_path, "return random.Random(seed).random()", "import random\n"
        )
        assert findings(report) == []


    def test_numpy_global_draw_source(self, tmp_path):
        report = self._lint_source_in_sink(
            tmp_path, "return np.random.rand()", "import numpy as np\n"
        )
        assert len(findings(report)) == 1
        assert "numpy.random.rand" in findings(report)[0].message

    def test_numpy_unseeded_default_rng_source(self, tmp_path):
        report = self._lint_source_in_sink(
            tmp_path,
            "return default_rng().integers(8)",
            "from numpy.random import default_rng\n",
        )
        assert len(findings(report)) == 1
        assert "default_rng" in findings(report)[0].message

    def test_numpy_unseeded_randomstate_source(self, tmp_path):
        report = self._lint_source_in_sink(
            tmp_path,
            "return np.random.RandomState().rand()",
            "import numpy as np\n",
        )
        # the constructor is flagged; the .rand() draw on the returned
        # object is instance state, not the shared global
        assert len(findings(report)) == 1
        assert "RandomState" in findings(report)[0].message

    def test_numpy_seeded_default_rng_is_clean(self, tmp_path):
        report = self._lint_source_in_sink(
            tmp_path,
            "return default_rng(seed).integers(8)",
            "from numpy.random import default_rng\n",
        )
        assert findings(report) == []

    def test_numpy_seeded_randomstate_is_clean(self, tmp_path):
        report = self._lint_source_in_sink(
            tmp_path,
            "return np.random.RandomState(seed).rand()",
            "import numpy as np\n",
        )
        assert findings(report) == []


class TestSinkCatalog:
    def test_engine_run_is_a_sink(self, tmp_path):
        report = run_lint(
            tmp_path,
            {
                "repro/radio/engine.py": (
                    "import random\n"
                    "class Engine:\n"
                    "    def run(self):\n"
                    "        return random.random()\n"
                ),
            },
            RULE,
        )
        assert len(findings(report)) == 1
        assert "Engine.run" in findings(report)[0].message

    def test_adversary_move_kernel_is_a_sink(self, tmp_path):
        report = run_lint(
            tmp_path,
            {
                "repro/adversary/moves.py": (
                    "import random\n"
                    "def add_fault(state, rng):\n"
                    "    return random.random()\n"
                ),
            },
            RULE,
        )
        assert len(findings(report)) == 1

    def test_unrelated_module_is_not_a_sink(self, tmp_path):
        """A random draw in a function no sink reaches stays silent."""
        report = run_lint(
            tmp_path,
            {
                "repro/viz/plots.py": (
                    "import random\n"
                    "def scatter_jitter():\n"
                    "    return random.random()\n"
                ),
            },
            RULE,
        )
        assert findings(report) == []
