"""Campaign-service tests: the HTTP surface end-to-end over loopback.

A real ``ThreadingHTTPServer`` on an ephemeral port, driven with
``urllib`` -- submission, resubmission identity (100% hits, identical
bytes), unit-key lookup, metrics exposition validity, and error paths.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.exec import ResultCache
from repro.obs.prom import parse_metrics, validate_metrics_text
from repro.serve import CampaignService, make_server

SWEEP_REQUEST = {
    "specs": [
        {
            "kind": "crash",
            "r": 1,
            "t": 1,
            "trials": 6,
            "protocol": "crash-flood",
        }
    ],
    "root_seed": 4,
    "chunk_size": 2,
}


@pytest.fixture
def server(tmp_path):
    """A live service over a fresh sharded store; yields its base URL."""
    service = CampaignService(cache=ResultCache(tmp_path / "store"))
    httpd = make_server(service)
    host, port = httpd.server_address[:2]
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}"
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=5)


def post_json(url, payload):
    """POST a dict as JSON; return (status, raw_bytes)."""
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, response.read()


def get(url):
    """GET; return (status, raw_bytes)."""
    with urllib.request.urlopen(url) as response:
        return response.status, response.read()


class TestSweepSubmission:
    def test_submit_runs_and_reports(self, server):
        status, body = post_json(f"{server}/sweeps", SWEEP_REQUEST)
        report = json.loads(body)
        assert status == 200
        assert report["id"] == "sweep-1"
        assert report["status"] == "done"
        assert len(report["rows"][0]) == 6
        assert report["stats"]["cache_misses"] == 3
        assert len(report["unit_keys"]) == 3

    def test_resubmission_is_pure_hits_and_identical_bytes(self, server):
        _, first = post_json(f"{server}/sweeps", SWEEP_REQUEST)
        _, second = post_json(f"{server}/sweeps", SWEEP_REQUEST)
        a, b = json.loads(first), json.loads(second)
        assert b["hit_fraction"] == 1.0
        assert b["stats"]["cache_hits"] == b["stats"]["units_total"]
        # rows byte-identical on the wire (canonical JSON both times)
        rows = lambda raw: json.dumps(  # noqa: E731 - tiny local helper
            json.loads(raw)["rows"], sort_keys=True
        ).encode()
        assert rows(first) == rows(second)

    def test_sweep_report_refetch(self, server):
        _, first = post_json(f"{server}/sweeps", SWEEP_REQUEST)
        status, again = get(f"{server}/sweeps/sweep-1")
        assert status == 200
        assert json.loads(again)["rows"] == json.loads(first)["rows"]

    def test_unknown_sweep_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(f"{server}/sweeps/sweep-999")
        assert err.value.code == 404

    def test_unit_key_lookup(self, server):
        _, body = post_json(f"{server}/sweeps", SWEEP_REQUEST)
        key = json.loads(body)["unit_keys"][0]
        status, unit = get(f"{server}/results/{key}")
        assert status == 200
        payload = json.loads(unit)
        assert payload["key"] == key
        assert len(payload["rows"]) == 2  # chunk_size trials

    def test_unknown_unit_key_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(f"{server}/results/{'0' * 64}")
        assert err.value.code == 404


class TestErrorPaths:
    def test_invalid_json_body_400(self, server):
        request = urllib.request.Request(
            f"{server}/sweeps", data=b"not json {{{"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400

    def test_missing_specs_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post_json(f"{server}/sweeps", {"root_seed": 1})
        assert err.value.code == 400
        assert "specs" in json.loads(err.value.read())["error"]

    def test_bad_spec_field_400(self, server):
        bad = {"specs": [{"kind": "gremlin", "r": 1, "t": 1}]}
        with pytest.raises(urllib.error.HTTPError) as err:
            post_json(f"{server}/sweeps", bad)
        assert err.value.code == 400

    def test_unknown_endpoint_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(f"{server}/teapot")
        assert err.value.code == 404


class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus_text(self, server):
        post_json(f"{server}/sweeps", SWEEP_REQUEST)
        status, body = get(f"{server}/metrics")
        assert status == 200
        nfam, nsamples = validate_metrics_text(body.decode("utf-8"))
        assert nfam >= 8 and nsamples >= nfam

    def test_counters_track_campaigns(self, server):
        post_json(f"{server}/sweeps", SWEEP_REQUEST)
        post_json(f"{server}/sweeps", SWEEP_REQUEST)
        _, body = get(f"{server}/metrics")
        fams = parse_metrics(body.decode("utf-8"))
        assert fams["repro_sweeps_total"].samples[0].value == 2
        by_outcome = {
            s.labels["outcome"]: s.value
            for s in fams["repro_units_total"].samples
        }
        assert by_outcome["computed"] == 3  # first submission
        assert by_outcome["cached"] == 3  # second submission
        assert by_outcome["failed"] == 0
        assert fams["repro_trials_total"].samples[0].value == 12

    def test_healthz(self, server):
        status, body = get(f"{server}/healthz")
        assert status == 200
        assert json.loads(body) == {"ok": True}
