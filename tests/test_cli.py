"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.protocol == "bv-two-hop"
        assert args.r == 2 and args.t == 4

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--protocol", "gossip"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "byzantine"])
        assert args.r == 1 and args.trials == 8 and args.workers == 1
        assert not args.no_cache and not args.resume

    def test_sweep_requires_kind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "quantum"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "EXP-THM1" in out
        assert "Table I" in out

    def test_thresholds(self, capsys):
        assert main(["thresholds", "--radii", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "byz_linf_max_t" in out

    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "EXP-F1_3", "--radii", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "partition_ok" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "EXP-UNKNOWN"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_sweep_end_to_end_json_report(self, capsys, tmp_path):
        """A tiny sweep writes a JSON report with points + exec stats,
        and an identical rerun is served entirely from the cache."""
        import json

        report = tmp_path / "report.json"
        args = [
            "sweep", "crash", "--r", "1", "--budgets", "0", "1",
            "--trials", "2", "--cache-dir", str(tmp_path / "cache"),
            "--json", str(report),
        ]
        assert main(args) == 0
        first = json.loads(report.read_text())
        assert [p["t"] for p in first["points"]] == [0, 1]
        assert first["stats"]["cache_misses"] == first["stats"]["units_total"]
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "2/2 work units already checkpointed" in out
        second = json.loads(report.read_text())
        assert second["points"] == first["points"]
        assert second["stats"]["cache_hits"] == second["stats"]["units_total"]
        assert second["stats"]["cache_misses"] == 0

    def test_demo_safe_run_exit_zero(self, capsys):
        code = main(
            [
                "demo",
                "--r",
                "1",
                "--t",
                "1",
                "--protocol",
                "cpa",
                "--strategy",
                "liar",
                "--map",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "achieved" in out
        assert "S" in out  # the map was printed
