"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.protocol == "bv-two-hop"
        assert args.r == 2 and args.t == 4

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--protocol", "gossip"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "byzantine"])
        assert args.r == 1 and args.trials == 8 and args.workers == 1
        assert not args.no_cache and not args.resume

    def test_sweep_requires_kind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "quantum"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "EXP-THM1" in out
        assert "Table I" in out

    def test_thresholds(self, capsys):
        assert main(["thresholds", "--radii", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "byz_linf_max_t" in out

    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "EXP-F1_3", "--radii", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "partition_ok" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "EXP-UNKNOWN"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_sweep_end_to_end_json_report(self, capsys, tmp_path):
        """A tiny sweep writes a JSON report with points + exec stats,
        and an identical rerun is served entirely from the cache."""
        import json

        report = tmp_path / "report.json"
        args = [
            "sweep", "crash", "--r", "1", "--budgets", "0", "1",
            "--trials", "2", "--cache-dir", str(tmp_path / "cache"),
            "--json", str(report),
        ]
        assert main(args) == 0
        first = json.loads(report.read_text())
        assert [p["t"] for p in first["points"]] == [0, 1]
        assert first["stats"]["cache_misses"] == first["stats"]["units_total"]
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "2/2 work units already checkpointed" in out
        second = json.loads(report.read_text())
        assert second["points"] == first["points"]
        assert second["stats"]["cache_hits"] == second["stats"]["units_total"]
        assert second["stats"]["cache_misses"] == 0

    def test_demo_safe_run_exit_zero(self, capsys):
        code = main(
            [
                "demo",
                "--r",
                "1",
                "--t",
                "1",
                "--protocol",
                "cpa",
                "--strategy",
                "liar",
                "--map",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "achieved" in out
        assert "S" in out  # the map was printed


class TestTraceParser:
    def test_defaults(self):
        args = build_parser().parse_args(["trace", "byzantine"])
        assert args.kind == "byzantine"
        assert args.r == 2 and args.t == 2 and args.seed == 0
        assert args.strategy == "fabricator"
        assert args.placement == "random"
        assert args.jsonl is None and args.summary is None
        assert not args.deliveries and not args.profile

    def test_requires_kind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "quantum"])


class TestTraceCommand:
    ARGS = ["trace", "byzantine", "--r", "1", "--t", "1", "--seed", "7"]

    def test_prints_tables(self, capsys):
        assert main(list(self.ARGS)) == 0
        out = capsys.readouterr().out
        assert "outcome" in out
        assert "wave front from source (0, 0)" in out
        assert "commit latency" in out

    def test_jsonl_byte_identical_across_runs(self, tmp_path, capsys):
        """The acceptance bar: same seed, two invocations, exact bytes."""
        paths = [tmp_path / n for n in ("a.jsonl", "b.jsonl")]
        summaries = [tmp_path / n for n in ("a.json", "b.json")]
        for jsonl, summary in zip(paths, summaries):
            assert (
                main(
                    list(self.ARGS)
                    + ["--jsonl", str(jsonl), "--summary", str(summary)]
                )
                == 0
            )
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert summaries[0].read_bytes() == summaries[1].read_bytes()

    def test_jsonl_validates(self, tmp_path, capsys):
        from repro.obs import OBS_SCHEMA_VERSION, validate_jsonl

        jsonl = tmp_path / "t.jsonl"
        summary = tmp_path / "t.json"
        assert (
            main(
                list(self.ARGS)
                + ["--jsonl", str(jsonl), "--summary", str(summary)]
            )
            == 0
        )
        capsys.readouterr()
        count = validate_jsonl(jsonl.read_text(encoding="utf-8"))
        assert count > 0
        import json

        data = json.loads(summary.read_text(encoding="utf-8"))
        assert data["schema"] == OBS_SCHEMA_VERSION
        assert data["transmissions"] > 0 and data["commits"] > 0

    def test_profile_table(self, capsys):
        assert main(list(self.ARGS) + ["--profile"]) == 0
        out = capsys.readouterr().out
        assert "engine phase profile" in out
        assert "transmit" in out

    def test_crash_kind(self, capsys):
        assert (
            main(["trace", "crash", "--r", "1", "--t", "1", "--seed", "3"])
            == 0
        )
        out = capsys.readouterr().out
        assert "crashes=" in out
