"""End-to-end reproduction of the paper's headline results.

Each test instantiates the paper's scenario in the simulator and checks
the *claim*, not a number we tuned: achievability strictly below each
threshold, failure at it, safety everywhere.
"""

import pytest

from repro.analysis.reachability import crash_broadcast_coverage
from repro.core.thresholds import (
    byzantine_linf_max_t,
    crash_linf_max_t,
    crash_linf_threshold,
    koo_impossibility_bound,
)
from repro.experiments.scenarios import (
    byzantine_broadcast_scenario,
    crash_broadcast_scenario,
    strip_torus,
)
from repro.faults.constructions import far_side_nodes, torus_byzantine_strip


class TestTheorem1ExactByzantineThreshold:
    """Byzantine, L-inf: achievable iff t < r(2r+1)/2."""

    @pytest.mark.parametrize("r", [1, 2])
    @pytest.mark.parametrize("protocol", ["bv-two-hop"])
    def test_achievable_below(self, r, protocol):
        t = byzantine_linf_max_t(r)
        for strategy in ("silent", "liar", "fabricator"):
            sc = byzantine_broadcast_scenario(
                r=r, t=t, protocol=protocol, strategy=strategy
            )
            sc.validate()
            out = sc.run()
            assert out.achieved, (r, strategy, out.summary())

    @pytest.mark.parametrize("r", [1, 2])
    def test_blocked_at_koo_bound(self, r):
        t = koo_impossibility_bound(r)
        sc = byzantine_broadcast_scenario(
            r=r, t=t, protocol="bv-two-hop", strategy="silent"
        )
        sc.validate()
        out = sc.run()
        assert out.safe
        assert not out.live
        # specifically the far band is cut off:
        far_correct = far_side_nodes(sc.topology) - sc.faulty_nodes
        assert far_correct <= set(out.undecided)

    def test_indirect_protocol_matches_at_r1(self):
        t = byzantine_linf_max_t(1)
        sc = byzantine_broadcast_scenario(
            r=1, t=t, protocol="bv-indirect", strategy="fabricator"
        )
        sc.validate()
        assert sc.run().achieved

    @pytest.mark.parametrize("r", [1, 2])
    def test_threshold_is_exact(self, r):
        """No integer gap: max achievable t + 1 == impossibility bound."""
        assert byzantine_linf_max_t(r) + 1 == koo_impossibility_bound(r)


class TestTheorems4And5ExactCrashThreshold:
    """Crash-stop, L-inf: achievable iff t < r(2r+1)."""

    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_achievable_below(self, r):
        sc = crash_broadcast_scenario(r=r, t=crash_linf_max_t(r))
        sc.validate()
        assert sc.run().achieved

    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_partitioned_at_threshold(self, r):
        sc = crash_broadcast_scenario(
            r=r, t=crash_linf_threshold(r), enforce_budget=False
        )
        sc.validate()  # the strip construction respects t = r(2r+1)
        out = sc.run()
        assert out.safe and not out.live

    @pytest.mark.parametrize("r", [1, 2])
    def test_simulation_agrees_with_reachability_analysis(self, r):
        """The simulator and the analytic criterion (Section VII: 'the
        sole criterion is reachability') must agree node-for-node."""
        sc = crash_broadcast_scenario(
            r=r, t=crash_linf_threshold(r), enforce_budget=False
        )
        out = sc.run()
        report = crash_broadcast_coverage(
            sc.topology, sc.source, sc.faulty_nodes
        )
        committed = set(out.result.committed())
        assert committed == set(report.reached)
        assert set(out.undecided) == set(report.unreached_correct)


class TestByzantineVsCrashGap:
    """The paper's structural insight: crash tolerance is double the
    Byzantine tolerance."""

    @pytest.mark.parametrize("r", [1, 2])
    def test_crash_protocol_survives_byzantine_budget_faults(self, r):
        """Crash-flood at the *Byzantine* impossibility budget (as crash
        faults) still succeeds -- crash faults are much weaker."""
        sc = crash_broadcast_scenario(r=r, t=koo_impossibility_bound(r))
        sc.validate()
        assert sc.run().achieved

    @pytest.mark.parametrize("r", [1, 2])
    def test_half_density_strip_does_not_partition_reachability(self, r):
        """The Byzantine blocker is NOT a reachability cut: treated as
        crash faults, the half-density strip lets flooding through (the
        blocking is evidential, not topological)."""
        torus = strip_torus(r)
        faults = torus_byzantine_strip(torus)
        report = crash_broadcast_coverage(torus, (0, 0), faults)
        assert report.complete


class TestLatencyAndShape:
    def test_commit_wave_expands_with_rounds(self):
        """Commit rounds grow (weakly) with distance from the source."""
        sc = byzantine_broadcast_scenario(
            r=1, t=1, protocol="bv-two-hop", strategy="silent"
        )
        out = sc.run()
        rounds = {
            node: proc.commit_round
            for node, proc in out.result.processes.items()
            if getattr(proc, "commit_round", None) is not None
        }
        src_round = rounds[(0, 0)]
        far_node = max(
            rounds, key=lambda n: sc.topology.distance((0, 0), n)
        )
        assert rounds[far_node] >= src_round

    def test_messages_scale_with_protocol_weight(self):
        """CPA < two-hop < four-hop in message complexity, same scenario."""
        costs = {}
        for protocol in ("cpa", "bv-two-hop", "bv-indirect"):
            sc = byzantine_broadcast_scenario(
                r=1, t=1, protocol=protocol, strategy="silent"
            )
            costs[protocol] = sc.run().messages
        assert costs["cpa"] < costs["bv-two-hop"] < costs["bv-indirect"]


class TestEuclideanMetric:
    """Section VIII / Koo's L2 bound, behaviorally."""

    def test_cpa_l2_at_koo_l2_budget(self):
        """CPA on the Euclidean metric at Koo's certified L2 budget."""
        from repro.core.thresholds import koo_cpa_l2_bound
        import math

        r = 3
        t = max(0, math.ceil(koo_cpa_l2_bound(r)) - 1)  # 1 for r = 3
        assert t >= 1
        sc = byzantine_broadcast_scenario(
            r=r, t=t, protocol="cpa", strategy="liar", metric="l2"
        )
        sc.validate()
        out = sc.run()
        assert out.achieved

    def test_bv_two_hop_l2_small_budget(self):
        """The indirect-report protocol also runs under L2; at a small
        budget (within the 0.23*pi*r^2 regime) it achieves broadcast."""
        sc = byzantine_broadcast_scenario(
            r=2, t=2, protocol="bv-two-hop", strategy="liar", metric="l2"
        )
        sc.validate()
        out = sc.run()
        assert out.achieved

    def test_l2_impossibility_strip_blocks(self):
        from repro.experiments.scenarios import strip_torus
        from repro.faults.constructions import torus_byzantine_strip
        from repro.faults.placement import max_faults_per_nbd

        r = 2
        torus = strip_torus(r, metric="l2")
        faults = torus_byzantine_strip(torus)
        worst, _ = max_faults_per_nbd(faults, r, metric="l2", topology=torus)
        sc = byzantine_broadcast_scenario(
            r=r,
            t=worst,
            protocol="bv-two-hop",
            strategy="silent",
            metric="l2",
            torus=torus,
            enforce_budget=False,
        )
        sc.validate()
        out = sc.run()
        assert out.safe and not out.live
