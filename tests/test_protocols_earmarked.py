"""Tests for the earmarked protocol and its frame-selection machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.earmark import (
    choose_frame,
    watchlist_for_node,
    watchlist_size,
)
from repro.core.thresholds import byzantine_linf_max_t, koo_impossibility_bound
from repro.core.witnesses import verify_family
from repro.experiments.scenarios import (
    byzantine_broadcast_scenario,
    recommended_torus,
)
from repro.geometry.metrics import LINF
from repro.protocols.bv_earmarked import BVEarmarkedProtocol
from repro.protocols.registry import correct_process_map
from repro.radio.run import run_broadcast

displacements = st.tuples(
    st.integers(min_value=-12, max_value=12),
    st.integers(min_value=-12, max_value=12),
)
radii = st.integers(min_value=1, max_value=3)


class TestChooseFrame:
    @given(displacements, radii)
    def test_source_region_has_no_frame(self, dp, r):
        if max(abs(dp[0]), abs(dp[1])) <= r:
            assert choose_frame(dp, r) is None

    @given(displacements, radii)
    def test_frame_geometry(self, dp, r):
        """The chosen frame must put the node at the canonical top-edge
        frontier position (-r+l, r+1), 0 <= l <= r."""
        frame = choose_frame(dp, r)
        if frame is None:
            return
        center, transform, inverse, l = frame
        assert 0 <= l <= r
        rel = (dp[0] - center[0], dp[1] - center[1])
        assert transform(rel) == (-r + l, r + 1)
        # inverse really inverts
        for probe in ((1, 0), (0, 1), (3, -2)):
            assert inverse(transform(probe)) == probe

    @given(displacements, radii)
    def test_center_strictly_closer_to_source(self, dp, r):
        """The induction must be well-founded: the chosen committed
        neighborhood center is L1-closer to the source than the node."""
        frame = choose_frame(dp, r)
        if frame is None:
            return
        center = frame[0]
        assert abs(center[0]) + abs(center[1]) < abs(dp[0]) + abs(dp[1])

    def test_axis_cases(self):
        assert choose_frame((0, 3), 1)[0] == (0, 1)
        assert choose_frame((3, 0), 1)[0] == (1, 0)
        assert choose_frame((-3, 0), 1)[0] == (-1, 0)
        assert choose_frame((0, -3), 1)[0] == (0, -1)


class TestWatchlistForNode:
    def test_source_neighbors_need_none(self):
        assert watchlist_for_node((1, 1), (0, 0), 2) is None
        assert watchlist_for_node((0, 0), (0, 0), 2) is None

    @given(displacements, st.integers(min_value=1, max_value=2))
    @settings(max_examples=20)
    def test_watchlist_well_formed(self, dp, r):
        if max(abs(dp[0]), abs(dp[1])) <= r:
            return
        wl = watchlist_for_node(dp, (0, 0), r)
        assert wl is not None
        assert len(wl) >= r * (2 * r + 1)
        frame = choose_frame(dp, r)
        center = frame[0]
        for origin, chains in wl.items():
            # every watched origin is in the chosen neighborhood
            assert LINF.within(origin, center, r), (origin, center)
            for chain in chains:
                if not chain:
                    # direct: origin adjacent to the node
                    assert LINF.within(origin, dp, r)
                    continue
                # chain orientation: nearest relay adjacent to the node,
                # deepest relay adjacent to the origin, consecutive hops
                assert LINF.within(chain[0], dp, r)
                assert LINF.within(chain[-1], origin, r)
                for u, v in zip(chain, chain[1:]):
                    assert LINF.within(u, v, r)

    @given(displacements)
    @settings(max_examples=20)
    def test_indirect_chains_are_node_disjoint(self, dp):
        """Per watched origin, the indirect chains are pairwise
        node-disjoint -- the property the commit rule's counting needs."""
        r = 2
        if max(abs(dp[0]), abs(dp[1])) <= r:
            return
        wl = watchlist_for_node(dp, (0, 0), r)
        for origin, chains in wl.items():
            seen = set()
            for chain in chains:
                for node in chain:
                    assert node not in seen, (origin, chain)
                    seen.add(node)

    def test_offset_source(self):
        """Watch-lists translate with the source."""
        base = watchlist_for_node((0, 4), (0, 0), 1)
        moved = watchlist_for_node((7, 9), (7, 5), 1)
        shift = lambda p: (p[0] + 7, p[1] + 5)
        assert {shift(o) for o in base} == set(moved)


class TestEarmarkedProtocolRuns:
    def test_fault_free(self):
        torus = recommended_torus(1)
        correct = set(torus.nodes())
        procs = correct_process_map(
            torus, "bv-earmarked", 1, (0, 0), 1, correct
        )
        out = run_broadcast(torus, procs, 1, correct, max_rounds=100)
        assert out.achieved

    @pytest.mark.parametrize("strategy", ["silent", "liar", "fabricator"])
    def test_below_threshold_achieves(self, strategy):
        sc = byzantine_broadcast_scenario(
            r=1,
            t=byzantine_linf_max_t(1),
            protocol="bv-earmarked",
            strategy=strategy,
        )
        sc.validate()
        assert sc.run().achieved

    def test_at_impossibility_blocked_and_safe(self):
        sc = byzantine_broadcast_scenario(
            r=1,
            t=koo_impossibility_bound(1),
            protocol="bv-earmarked",
            strategy="silent",
        )
        sc.validate()
        out = sc.run()
        assert out.safe and not out.live

    def test_state_bound(self):
        torus = recommended_torus(1)
        correct = set(torus.nodes())
        procs = correct_process_map(
            torus, "bv-earmarked", 1, (0, 0), 1, correct
        )
        run_broadcast(torus, procs, 1, correct, max_rounds=100)
        r = 1
        bound = (r * (2 * r + 1)) ** 2 + r * (2 * r + 1) * (r + 1) * r
        for node, proc in procs.items():
            assert proc.watchlist_chain_count() <= 2 * bound

    def test_non_earmarked_reports_ignored(self):
        """A report along a plausible but un-watched chain must not
        contribute evidence."""
        from repro.grid.torus import Torus
        from repro.protocols.base import HeardMsg
        from repro.radio.engine import Engine
        from repro.radio.messages import Envelope

        torus = Torus.square(9, 1)
        proc = BVEarmarkedProtocol(0, (4, 4))  # source far away
        eng = Engine(torus, {(4, 1): proc})
        ctx = eng.context_of((4, 1))
        proc.on_start(ctx)
        assert proc._watch is not None
        # pick a plausible chain that is NOT in the watch-list: a report
        # about an origin outside the chosen neighborhood
        origin_out = (4, 0)  # below the node, away from the source side
        if origin_out in proc._watch:
            origin_out = (5, 0)
        msg = HeardMsg(origin=origin_out, value=1, relays=())
        proc.on_receive(ctx, Envelope((4, 0) if origin_out != (4, 0) else (5, 1), msg, 0, 0, 0))
        assert proc.committed_value() is None

    def test_random_placement_below_threshold(self):
        for seed in range(2):
            sc = byzantine_broadcast_scenario(
                r=1,
                t=1,
                protocol="bv-earmarked",
                strategy="fabricator",
                placement="random",
                seed=seed,
            )
            sc.validate()
            assert sc.run().achieved
