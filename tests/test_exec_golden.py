"""Golden-trace regression suite for the sweep execution layer.

Pins (a) serial-vs-parallel byte equality and (b) the *exact* per-trial
and aggregate rows of two small scenarios -- Byzantine r=2 and crash
r=2 -- under a fixed root seed.  Any change to the seed-derivation
scheme, the scenario builders, the placement generators, or the engine
that perturbs these traces fails loudly here instead of silently
shifting every published sweep table.

If a change is *intended* to alter traces (e.g. a new seed scheme), bump
``repro.exec.cache.CACHE_SCHEMA_VERSION`` and regenerate the constants
below by running the module under ``python -m`` (see ``_regenerate``).
"""

from __future__ import annotations

from repro.analysis.sweep import SweepPoint, byzantine_sharpness_run, crash_sharpness_run
from repro.exec import ScenarioSpec, SweepExecutor

ROOT_SEED = 7

BYZ_SPECS = [
    ScenarioSpec(
        kind="byzantine",
        r=2,
        t=t,
        trials=2,
        protocol="bv-two-hop",
        strategy="fabricator",
        placement="random",
    )
    for t in (2, 6)
]

CRASH_SPECS = [
    ScenarioSpec(
        kind="crash", r=2, t=t, trials=3, protocol="crash-flood",
        placement="random",
    )
    for t in (5, 10, 11)
]

#: exact per-trial rows for BYZ_SPECS at ROOT_SEED (golden)
BYZ_GOLDEN = [
    [
        {"achieved": True, "safe": True, "live": True, "undecided": 0,
         "rounds": 5, "messages": 5282, "faults": 8},
        {"achieved": True, "safe": True, "live": True, "undecided": 0,
         "rounds": 5, "messages": 5546, "faults": 10},
    ],
    [
        {"achieved": True, "safe": True, "live": True, "undecided": 0,
         "rounds": 7, "messages": 8582, "faults": 33},
        {"achieved": True, "safe": True, "live": True, "undecided": 0,
         "rounds": 7, "messages": 8582, "faults": 33},
    ],
]

#: exact per-trial rows for CRASH_SPECS at ROOT_SEED (golden)
CRASH_GOLDEN = [
    [
        {"achieved": True, "safe": True, "live": True, "undecided": 0,
         "rounds": 2, "messages": 144, "faults": 26},
        {"achieved": True, "safe": True, "live": True, "undecided": 0,
         "rounds": 2, "messages": 144, "faults": 26},
        {"achieved": True, "safe": True, "live": True, "undecided": 0,
         "rounds": 2, "messages": 143, "faults": 27},
    ],
    [
        {"achieved": True, "safe": True, "live": True, "undecided": 0,
         "rounds": 3, "messages": 113, "faults": 57},
        {"achieved": True, "safe": True, "live": True, "undecided": 0,
         "rounds": 3, "messages": 112, "faults": 58},
        {"achieved": True, "safe": True, "live": True, "undecided": 0,
         "rounds": 2, "messages": 112, "faults": 58},
    ],
    [
        {"achieved": True, "safe": True, "live": True, "undecided": 0,
         "rounds": 2, "messages": 106, "faults": 64},
        {"achieved": True, "safe": True, "live": True, "undecided": 0,
         "rounds": 3, "messages": 106, "faults": 64},
        {"achieved": True, "safe": True, "live": True, "undecided": 0,
         "rounds": 2, "messages": 107, "faults": 63},
    ],
]


class TestGoldenTraces:
    def test_byzantine_r2_exact_trial_rows(self):
        result = SweepExecutor().run(BYZ_SPECS, root_seed=ROOT_SEED)
        assert result.rows == BYZ_GOLDEN

    def test_crash_r2_exact_trial_rows(self):
        result = SweepExecutor().run(CRASH_SPECS, root_seed=ROOT_SEED)
        assert result.rows == CRASH_GOLDEN

    def test_byzantine_r2_exact_sweep_points(self):
        run = byzantine_sharpness_run(
            2, (2, 6), trials=2, seed=ROOT_SEED
        )
        assert run.points == [
            SweepPoint(t=2, trials=2, success_fraction=1.0,
                       safety_fraction=1.0, mean_undecided=0.0),
            SweepPoint(t=6, trials=2, success_fraction=1.0,
                       safety_fraction=1.0, mean_undecided=0.0),
        ]

    def test_crash_r2_exact_sweep_points(self):
        run = crash_sharpness_run(2, (5, 10, 11), trials=3, seed=ROOT_SEED)
        assert run.points == [
            SweepPoint(t=5, trials=3, success_fraction=1.0,
                       safety_fraction=1.0, mean_undecided=0.0),
            SweepPoint(t=10, trials=3, success_fraction=1.0,
                       safety_fraction=1.0, mean_undecided=0.0),
            SweepPoint(t=11, trials=3, success_fraction=1.0,
                       safety_fraction=1.0, mean_undecided=0.0),
        ]


class TestSerialParallelEquality:
    def test_parallel_aggregates_byte_identical_byzantine(self):
        """--workers 2 and --workers 1 agree byte-for-byte on the same
        root seed (the acceptance criterion of the execution layer)."""
        serial = SweepExecutor(workers=1, chunk_size=1).run(
            BYZ_SPECS, root_seed=ROOT_SEED
        )
        parallel = SweepExecutor(workers=2, chunk_size=1).run(
            BYZ_SPECS, root_seed=ROOT_SEED
        )
        assert serial.rows == parallel.rows == BYZ_GOLDEN

    def test_parallel_aggregates_byte_identical_crash(self):
        serial = SweepExecutor(workers=1, chunk_size=2).run(
            CRASH_SPECS, root_seed=ROOT_SEED
        )
        parallel = SweepExecutor(workers=3, chunk_size=2).run(
            CRASH_SPECS, root_seed=ROOT_SEED
        )
        assert serial.rows == parallel.rows == CRASH_GOLDEN


def _regenerate() -> str:  # pragma: no cover - maintenance helper
    """Print the current traces in golden-constant form."""
    import pprint

    byz = SweepExecutor().run(BYZ_SPECS, root_seed=ROOT_SEED).rows
    crash = SweepExecutor().run(CRASH_SPECS, root_seed=ROOT_SEED).rows
    return "BYZ_GOLDEN = {}\n\nCRASH_GOLDEN = {}".format(
        pprint.pformat(byz), pprint.pformat(crash)
    )


if __name__ == "__main__":  # pragma: no cover
    print(_regenerate())
