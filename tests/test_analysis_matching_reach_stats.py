"""Tests for repro.analysis.matching, .reachability, .percolation, .stats."""

import random

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.matching import is_perfect_matching, max_bipartite_matching
from repro.analysis.percolation import (
    critical_probability_estimate,
    percolation_curve,
    percolation_trial,
)
from repro.analysis.reachability import crash_broadcast_coverage, reachable_from
from repro.analysis.stats import confidence_interval95, mean, stdev, summarize
from repro.grid.torus import Torus


class TestMatching:
    def test_perfect_matching_found(self):
        edges = {i: [i, (i + 1) % 5] for i in range(5)}
        m = max_bipartite_matching(edges)
        assert len(m) == 5
        assert is_perfect_matching(edges, m)

    def test_bottleneck(self):
        edges = {0: ["a"], 1: ["a"], 2: ["a"]}
        m = max_bipartite_matching(edges)
        assert len(m) == 1

    def test_empty(self):
        assert max_bipartite_matching({}) == {}

    @given(st.integers(min_value=0, max_value=60))
    def test_against_networkx(self, seed):
        rng = random.Random(seed)
        lefts = range(6)
        rights = "abcdef"
        edges = {
            l: [r for r in rights if rng.random() < 0.4] for l in lefts
        }
        ours = max_bipartite_matching(edges)
        g = nx.Graph()
        g.add_nodes_from((("L", l) for l in lefts), bipartite=0)
        for l, rs in edges.items():
            for r in rs:
                g.add_edge(("L", l), ("R", r))
        theirs = nx.bipartite.maximum_matching(
            g, top_nodes=[("L", l) for l in lefts]
        )
        assert len(ours) == len(theirs) // 2

    def test_is_perfect_matching_rejects_reuse(self):
        edges = {0: ["a"], 1: ["a"]}
        assert not is_perfect_matching(edges, {0: "a", 1: "a"})

    def test_is_perfect_matching_rejects_nonedge(self):
        edges = {0: ["a"], 1: ["b"]}
        assert not is_perfect_matching(edges, {0: "b", 1: "a"})

    def test_region_pairing_use_case(self):
        """The D1/D2 pairing: full bipartite graph always has a perfect
        matching."""
        d1 = [(0, i) for i in range(4)]
        d2 = [(1, i) for i in range(4)]
        edges = {u: list(d2) for u in d1}
        m = max_bipartite_matching(edges)
        assert is_perfect_matching(edges, m)


class TestReachability:
    def test_full_torus_reachable(self):
        t = Torus.square(7, 1)
        assert len(reachable_from(t, [(0, 0)])) == 49

    def test_blocked_nodes_excluded(self):
        t = Torus.square(7, 1)
        blocked = [(x, y) for x in (2, 5) for y in range(7)]
        reached = reachable_from(t, [(0, 0)], blocked=blocked)
        assert (3, 3) not in reached
        assert (0, 3) in reached

    def test_blocked_source(self):
        t = Torus.square(7, 1)
        assert reachable_from(t, [(0, 0)], blocked=[(0, 0)]) == set()

    def test_coverage_report(self):
        t = Torus.square(9, 1)
        crashed = [(x, y) for x in (3, 7) for y in range(9)]
        rep = crash_broadcast_coverage(t, (0, 0), crashed)
        assert not rep.complete
        assert 0 < rep.coverage < 1
        assert rep.total_correct == 81 - 18

    def test_coverage_complete(self):
        t = Torus.square(7, 1)
        rep = crash_broadcast_coverage(t, (0, 0), [(3, 3)])
        assert rep.complete and rep.coverage == 1.0

    def test_crashed_source_rejected(self):
        t = Torus.square(7, 1)
        with pytest.raises(ValueError):
            crash_broadcast_coverage(t, (0, 0), [(0, 0)])


class TestPercolation:
    def test_trial_extremes(self):
        t = Torus.square(9, 1)
        rng = random.Random(1)
        assert percolation_trial(t, (0, 0), 0.0, rng) == 1.0
        assert percolation_trial(t, (0, 0), 1.0, rng) == 1.0  # only source left

    def test_invalid_probability(self):
        t = Torus.square(9, 1)
        with pytest.raises(ValueError):
            percolation_trial(t, (0, 0), 1.5, random.Random(0))

    def test_curve_monotone_shape(self):
        t = Torus.square(15, 1)
        pts = percolation_curve(t, (0, 0), [0.05, 0.5, 0.9], trials=8, seed=3)
        # low p: nearly full coverage; high p: tiny fraction of a huge
        # correct population... coverage counts reached/correct, so at
        # p=0.9 most correct nodes are isolated -> low coverage.
        assert pts[0].mean_coverage > 0.95
        assert pts[0].mean_coverage >= pts[-1].mean_coverage

    def test_curve_deterministic(self):
        t = Torus.square(11, 1)
        a = percolation_curve(t, (0, 0), [0.3], trials=5, seed=7)
        b = percolation_curve(t, (0, 0), [0.3], trials=5, seed=7)
        assert a[0].mean_coverage == b[0].mean_coverage

    def test_invalid_trials(self):
        t = Torus.square(9, 1)
        with pytest.raises(ValueError):
            percolation_curve(t, (0, 0), [0.5], trials=0)

    def test_critical_estimate(self):
        t = Torus.square(15, 1)
        pts = percolation_curve(
            t, (0, 0), [0.1, 0.3, 0.5, 0.7, 0.9], trials=6, seed=1
        )
        est = critical_probability_estimate(pts)
        if est is not None:
            assert 0.1 <= est <= 0.9

    def test_critical_estimate_none_when_flat(self):
        t = Torus.square(9, 2)
        pts = percolation_curve(t, (0, 0), [0.01], trials=4, seed=2)
        assert critical_probability_estimate(pts, threshold=0.0) is None


class TestClusterStatistics:
    def test_no_failures_one_cluster(self):
        from repro.analysis.percolation import cluster_statistics

        t = Torus.square(9, 1)
        stats = cluster_statistics(t, 0.0, random.Random(0))
        assert stats.clusters == 1
        assert stats.largest_fraction == 1.0
        assert stats.survivors == 81

    def test_all_failures(self):
        from repro.analysis.percolation import cluster_statistics

        t = Torus.square(9, 1)
        stats = cluster_statistics(t, 1.0, random.Random(0))
        assert stats.survivors == 0
        assert stats.largest_fraction == 0.0

    def test_invalid_probability(self):
        from repro.analysis.percolation import cluster_statistics

        with pytest.raises(ValueError):
            cluster_statistics(Torus.square(9, 1), 2.0, random.Random(0))

    def test_curve_shape(self):
        from repro.analysis.percolation import cluster_statistics_curve

        t = Torus.square(15, 1)
        rows = cluster_statistics_curve(t, [0.05, 0.9], trials=4, seed=1)
        assert rows[0]["mean_largest_fraction"] > rows[1][
            "mean_largest_fraction"
        ]

    def test_curve_deterministic(self):
        from repro.analysis.percolation import cluster_statistics_curve

        t = Torus.square(11, 1)
        a = cluster_statistics_curve(t, [0.4], trials=3, seed=5)
        b = cluster_statistics_curve(t, [0.4], trials=3, seed=5)
        assert a == b


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev(self):
        assert stdev([2.0, 2.0, 2.0]) == 0.0
        assert stdev([5.0]) == 0.0
        assert stdev([1.0, 3.0]) == pytest.approx(2.0**0.5)

    def test_ci_contains_mean(self):
        lo, hi = confidence_interval95([1.0, 2.0, 3.0, 4.0])
        assert lo <= 2.5 <= hi

    def test_ci_degenerate(self):
        assert confidence_interval95([7.0]) == (7.0, 7.0)

    def test_summarize_keys(self):
        s = summarize([1.0, 2.0])
        assert set(s) == {"n", "mean", "stdev", "min", "max"}
