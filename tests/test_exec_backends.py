"""Execution-backend tests: protocol conformance for serial/pool,
socket wire protocol (handshake, liveness, requeue), and cross-backend
row identity.

The socket tests run real TCP over loopback with in-process
:class:`WorkerServer` threads; worker death is injected with the
``max_units`` hook (the worker computes a unit and vanishes without
sending the result -- indistinguishable on the wire from a killed
process).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exec import ScenarioSpec
from repro.exec.backends import (
    BackendError,
    PoolBackend,
    SerialBackend,
    SocketBackend,
    WorkerServer,
    make_backend,
)
from repro.exec.backends.socket import parse_worker_addr
from repro.exec.executor import _run_unit

CRASH = ScenarioSpec(kind="crash", r=1, t=1, trials=4, protocol="crash-flood")


def _payloads(n=3, trials_per_unit=2):
    """Real work-unit payloads: n units over the CRASH spec."""
    spec = ScenarioSpec(
        kind="crash",
        r=1,
        t=1,
        trials=n * trials_per_unit,
        protocol="crash-flood",
    )
    return [
        (
            spec.as_dict(),
            0,
            tuple(range(i * trials_per_unit, (i + 1) * trials_per_unit)),
        )
        for i in range(n)
    ]


def _echo(payload):
    """Cheap unit function for protocol-shape tests."""
    spec_dict, root_seed, indices = payload
    return [{"seed": root_seed, "index": i} for i in indices]


def _boom(payload):
    """Unit function that always fails (unit-error path)."""
    raise ValueError("intentional unit failure")


class TestRegistry:
    def test_make_backend_names(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("pool", workers=3), PoolBackend)

    def test_socket_needs_addresses(self):
        with pytest.raises(ConfigurationError, match="worker"):
            make_backend("socket")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            make_backend("carrier-pigeon")

    def test_pool_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="workers"):
            PoolBackend(workers=0)

    def test_parse_worker_addr(self):
        assert parse_worker_addr("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_worker_addr(("h", 1)) == ("h", 1)
        with pytest.raises(ConfigurationError, match="host:port"):
            parse_worker_addr("no-port-here")


class TestProtocolConformance:
    """Every backend yields each index exactly once with equal rows."""

    def _drain(self, backend, payloads):
        with backend:
            return dict(backend.run_units(_echo, payloads))

    def test_serial_in_order(self):
        out = self._drain(SerialBackend(), _payloads())
        assert sorted(out) == [0, 1, 2]

    def test_pool_covers_all_indices(self):
        out = self._drain(PoolBackend(workers=2), _payloads())
        assert sorted(out) == [0, 1, 2]

    def test_pool_equals_serial_rows(self):
        payloads = _payloads()
        serial = self._drain(SerialBackend(), payloads)
        pooled = self._drain(PoolBackend(workers=2), payloads)
        assert pooled == serial

    def test_real_units_cross_backend_identical(self):
        """The actual _run_unit worker computes identical rows on
        serial and pool backends."""
        payloads = _payloads()
        serial = dict(SerialBackend().run_units(_run_unit, payloads))
        pooled = dict(
            PoolBackend(workers=2).run_units(_run_unit, payloads)
        )
        assert pooled == serial

    def test_status_shape(self):
        for backend in (SerialBackend(), PoolBackend(workers=2)):
            status = backend.status()
            assert set(status) == {
                "backend",
                "queue_depth",
                "workers_total",
                "workers_live",
            }
            assert status["queue_depth"] == 0


@pytest.fixture
def worker():
    """One live in-process socket worker (ephemeral port)."""
    server = WorkerServer()
    server.start()
    yield server
    server.stop()


class TestSocketBackend:
    def test_runs_units_over_tcp(self, worker):
        backend = SocketBackend([worker.address], unit_timeout_s=30.0)
        out = dict(backend.run_units(_echo, _payloads()))
        assert sorted(out) == [0, 1, 2]
        assert worker.units_done == 3

    def test_matches_serial_rows(self, worker):
        payloads = _payloads()
        backend = SocketBackend([worker.address], unit_timeout_s=30.0)
        assert dict(backend.run_units(_run_unit, payloads)) == dict(
            SerialBackend().run_units(_run_unit, payloads)
        )

    def test_no_worker_at_address(self):
        # port 1 on loopback: nothing listens there
        backend = SocketBackend(
            [("127.0.0.1", 1)], connect_timeout_s=0.5
        )
        with pytest.raises(BackendError, match="no usable workers"):
            list(backend.run_units(_echo, _payloads(1)))

    def test_version_skew_rejected(self):
        """A worker on a different cache-key schema refuses the
        handshake -- it must not compute rows under the wrong keys."""
        server = WorkerServer(schema="someone-elses-schema")
        server.start()
        try:
            backend = SocketBackend([server.address])
            with pytest.raises(BackendError, match="mismatch"):
                list(backend.run_units(_echo, _payloads(1)))
        finally:
            server.stop()

    def test_unit_error_propagates(self, worker):
        """A unit function that raises fails the campaign (no requeue:
        it would fail identically anywhere)."""
        backend = SocketBackend([worker.address], unit_timeout_s=30.0)
        with pytest.raises(BackendError, match="intentional unit failure"):
            list(backend.run_units(_boom, _payloads(1)))

    def test_killed_worker_requeues_to_survivor(self):
        """A worker dying mid-campaign loses nothing: its in-flight
        unit requeues and a surviving worker recomputes it, with rows
        identical to an undisturbed serial run."""
        dying = WorkerServer(max_units=1)
        dying.start()
        survivor = WorkerServer()
        survivor.start()
        try:
            payloads = _payloads(n=6)
            backend = SocketBackend(
                [dying.address, survivor.address],
                heartbeat_s=5.0,
                unit_timeout_s=30.0,
            )
            out = dict(backend.run_units(_run_unit, payloads))
            assert sorted(out) == list(range(6))
            assert out == dict(
                SerialBackend().run_units(_run_unit, payloads)
            )
            # the dying worker really did compute (and swallow) a unit
            assert dying.units_done == 1
            assert survivor.units_done == 6
        finally:
            dying.stop()
            survivor.stop()

    def test_last_worker_death_raises(self):
        """When every worker is gone with units outstanding the
        campaign fails loudly instead of hanging."""
        only = WorkerServer(max_units=1)
        only.start()
        try:
            backend = SocketBackend(
                [only.address], heartbeat_s=2.0, unit_timeout_s=5.0
            )
            with pytest.raises(BackendError, match="lost every worker"):
                list(backend.run_units(_run_unit, _payloads(n=4)))
        finally:
            only.stop()
