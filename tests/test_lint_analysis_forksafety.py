"""Fork-safety pass tests.

The pass finds the functions shipped across a process boundary -- the
first argument of ``pool.map``/``submit`` inside a ``with ...Pool(...)``
block, and the first argument of any ``.run_units(fn, payloads)``
ExecutionBackend submission -- walks their call closures, and flags the
shared-state hazards a fork (or a remote re-import) can turn into
silent divergence: mutable default arguments, global rebinding,
module-state mutation, and reads of unfrozen module-level mutable
registries.
"""

from tests.test_lint_rules import run_lint

RULE = ["fork-safety"]

EXECUTOR = (
    "import multiprocessing as mp\n"
    "from repro.exec.worker import run_unit\n"
    "def sweep(payloads):\n"
    "    ctx = mp.get_context('fork')\n"
    "    with ctx.Pool(2) as pool:\n"
    "        return pool.map(run_unit, payloads)\n"
)

#: A campaign submitting through the backend protocol: no Pool literal
#: anywhere, the receiver is an opaque parameter -- only the
#: ``.run_units`` method name marks the boundary.
BACKEND_CAMPAIGN = (
    "from repro.exec.worker import run_unit\n"
    "def campaign(backend, payloads):\n"
    "    return list(backend.run_units(run_unit, payloads))\n"
)


def findings(report):
    return [f for f in report.findings if f.rule_id == "fork-safety"]


def lint_worker(tmp_path, worker_source):
    return run_lint(
        tmp_path,
        {
            "repro/exec/executor.py": EXECUTOR,
            "repro/exec/worker.py": worker_source,
        },
        RULE,
    )


class TestHazards:
    def test_mutable_default_argument(self, tmp_path):
        report = lint_worker(
            tmp_path,
            "def run_unit(payload, extras=[]):\n"
            "    extras.append(payload)\n"
            "    return extras\n",
        )
        assert any("mutable default" in f.message for f in findings(report))

    def test_global_rebinding(self, tmp_path):
        report = lint_worker(
            tmp_path,
            "COUNT = 0\n"
            "def run_unit(payload):\n"
            "    global COUNT\n"
            "    COUNT = COUNT + 1\n"
            "    return payload\n",
        )
        assert any("rebinds global" in f.message for f in findings(report))

    def test_module_state_mutation_in_callee(self, tmp_path):
        """Hazards in the closure count, not just the entry function."""
        report = lint_worker(
            tmp_path,
            "_CACHE = {}\n"
            "def remember(key, value):\n"
            "    _CACHE[key] = value\n"
            "def run_unit(payload):\n"
            "    remember(payload, 1)\n"
            "    return payload\n",
        )
        assert any(
            "mutates module-level" in f.message for f in findings(report)
        )

    def test_unfrozen_registry_read(self, tmp_path):
        report = lint_worker(
            tmp_path,
            "STRATEGIES = {'a': 1}\n"
            "def run_unit(payload):\n"
            "    return STRATEGIES[payload]\n",
        )
        found = findings(report)
        assert any("mutable registry" in f.message for f in found)

    def test_frozen_registry_read_is_clean(self, tmp_path):
        report = lint_worker(
            tmp_path,
            "from types import MappingProxyType\n"
            "STRATEGIES = MappingProxyType({'a': 1})\n"
            "def run_unit(payload):\n"
            "    return STRATEGIES[payload]\n",
        )
        assert findings(report) == []

    def test_local_shadowing_is_not_a_mutation(self, tmp_path):
        """Mutating a *local* that shadows a module name is fine."""
        report = lint_worker(
            tmp_path,
            "from types import MappingProxyType\n"
            "DEFAULTS = MappingProxyType({'a': 1})\n"
            "def run_unit(payload):\n"
            "    DEFAULTS = {}\n"
            "    DEFAULTS['b'] = payload\n"
            "    return DEFAULTS\n",
        )
        assert findings(report) == []

    def test_hazard_outside_pool_closure_is_ignored(self, tmp_path):
        """The same registry read is silent when nothing submits the
        function to a pool."""
        report = run_lint(
            tmp_path,
            {
                "repro/exec/worker.py": (
                    "STRATEGIES = {'a': 1}\n"
                    "def run_unit(payload):\n"
                    "    return STRATEGIES[payload]\n"
                ),
            },
            RULE,
        )
        assert findings(report) == []


class TestBackendSubmission:
    """``.run_units(fn, ...)`` is a submission boundary on any receiver
    -- a unit function handed to a socket/pool backend gets the same
    closure walk as a literal ``pool.map`` argument."""

    def lint_backend_worker(self, tmp_path, worker_source):
        return run_lint(
            tmp_path,
            {
                "repro/exec/campaign.py": BACKEND_CAMPAIGN,
                "repro/exec/worker.py": worker_source,
            },
            RULE,
        )

    def test_mutable_default_into_backend_submission(self, tmp_path):
        """The ISSUE's fixture: a mutable default carried into a
        socket-backend submission is flagged without any Pool literal
        in sight."""
        report = self.lint_backend_worker(
            tmp_path,
            "def run_unit(payload, seen=[]):\n"
            "    seen.append(payload)\n"
            "    return seen\n",
        )
        assert any("mutable default" in f.message for f in findings(report))

    def test_closure_hazard_through_backend_submission(self, tmp_path):
        """Callee hazards count through a run_units boundary too."""
        report = self.lint_backend_worker(
            tmp_path,
            "_MEMO = {}\n"
            "def remember(key):\n"
            "    _MEMO[key] = True\n"
            "def run_unit(payload):\n"
            "    remember(payload)\n"
            "    return payload\n",
        )
        assert any(
            "mutates module-level" in f.message for f in findings(report)
        )

    def test_clean_unit_function_through_backend(self, tmp_path):
        report = self.lint_backend_worker(
            tmp_path,
            "def run_unit(payload):\n"
            "    return [payload]\n",
        )
        assert findings(report) == []

    def test_run_units_on_attribute_receiver(self, tmp_path):
        """self.backend.run_units(...) counts as a boundary too."""
        report = run_lint(
            tmp_path,
            {
                "repro/exec/campaign.py": (
                    "from repro.exec.worker import run_unit\n"
                    "class Runner:\n"
                    "    def go(self, payloads):\n"
                    "        return list(\n"
                    "            self.backend.run_units(run_unit, payloads)\n"
                    "        )\n"
                ),
                "repro/exec/worker.py": (
                    "def run_unit(payload, extras=[]):\n"
                    "    return extras\n"
                ),
            },
            RULE,
        )
        assert any("mutable default" in f.message for f in findings(report))
