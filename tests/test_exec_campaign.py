"""Campaign-manager tests: ordered finalization, checkpoint-on-
complete, and the cross-backend determinism contract.

The acceptance chain from the service tier's design: one sweep computed
on the serial backend, rerun on the pool backend, then rerun again over
the socket backend -- each rerun is a 100% cache hit with byte-identical
rows, including across a flat->sharded cache-layout migration and a
killed socket worker.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.exec import (
    CampaignRunner,
    ResultCache,
    ScenarioSpec,
    SweepExecutor,
    plan_units,
)
from repro.exec.backends import (
    BackendError,
    ExecutionBackend,
    PoolBackend,
    SerialBackend,
    SocketBackend,
    WorkerServer,
)
from repro.exec.cache import SHARD_DIR

CRASH = ScenarioSpec(kind="crash", r=1, t=1, trials=6, protocol="crash-flood")
BYZ = ScenarioSpec(
    kind="byzantine",
    r=1,
    t=1,
    trials=4,
    protocol="bv-two-hop",
    strategy="fabricator",
)


def canonical(rows):
    """Byte form used for identity assertions."""
    return json.dumps(rows, sort_keys=True).encode()


def _demote_to_flat(cache):
    """Rewrite a sharded cache into the legacy flat layout in place."""
    for path in list((cache.root / SHARD_DIR).glob("??/*.json")):
        os.replace(path, cache.root / path.name)
    for shard in list((cache.root / SHARD_DIR).glob("??")):
        shard.rmdir()


class TestPlanning:
    def test_plan_order_is_spec_then_trial(self):
        units = plan_units([CRASH, BYZ], root_seed=0, chunk_size=4)
        assert [(u.spec_index, u.indices) for u in units] == [
            (0, (0, 1, 2, 3)),
            (0, (4, 5)),
            (1, (0, 1, 2, 3)),
        ]

    def test_plan_keys_are_stable(self):
        a = plan_units([CRASH], 7, chunk_size=2)
        b = plan_units([CRASH], 7, chunk_size=2)
        assert [u.key for u in a] == [u.key for u in b]


class TestOrderedFinalization:
    def test_units_finalize_in_plan_order(self, tmp_path):
        """Whatever order the backend completes in, units come out in
        plan order with rows attached."""

        class ReversingBackend(ExecutionBackend):
            """Completes units in reverse submission order."""

            name = "reversing"

            def run_units(self, fn, payloads):
                """Yield (index, rows) last-submitted-first."""
                for index in reversed(range(len(payloads))):
                    yield index, fn(payloads[index])

        runner = CampaignRunner(ReversingBackend(), chunk_size=2)
        finalized = list(runner.iter_finalized([CRASH], root_seed=1))
        assert [u.indices for u in finalized] == [
            (0, 1),
            (2, 3),
            (4, 5),
        ]
        assert all(u.rows is not None for u in finalized)

    def test_reversed_completion_rows_match_serial(self, tmp_path):
        class ReversingBackend(ExecutionBackend):
            """Completes units in reverse submission order."""

            name = "reversing"

            def run_units(self, fn, payloads):
                """Yield (index, rows) last-submitted-first."""
                for index in reversed(range(len(payloads))):
                    yield index, fn(payloads[index])

        reference = CampaignRunner(SerialBackend(), chunk_size=2).run(
            [CRASH, BYZ], root_seed=3
        )
        reversed_run = CampaignRunner(ReversingBackend(), chunk_size=2).run(
            [CRASH, BYZ], root_seed=3
        )
        assert canonical(reversed_run.rows) == canonical(reference.rows)

    def test_incomplete_backend_raises(self):
        class LossyBackend(ExecutionBackend):
            """Silently drops the last unit (contract violation)."""

            name = "lossy"

            def run_units(self, fn, payloads):
                """Yield all but the final payload's result."""
                for index in range(len(payloads) - 1):
                    yield index, fn(payloads[index])

        runner = CampaignRunner(LossyBackend(), chunk_size=2)
        with pytest.raises(BackendError, match="without completing"):
            list(runner.iter_finalized([CRASH], root_seed=0))


class TestCheckpointing:
    def test_completions_banked_immediately(self, tmp_path):
        """Every completed unit is on disk before the campaign ends --
        an interrupt after unit k keeps units 0..k."""
        cache = ResultCache(tmp_path)
        runner = CampaignRunner(SerialBackend(), cache=cache, chunk_size=2)
        stream = runner.iter_finalized([CRASH], root_seed=0)
        first = next(stream)
        assert cache.contains(first.key)
        stream.close()  # abandon the campaign mid-flight
        # the rerun reuses the banked unit
        stats_probe = SweepExecutor(cache=cache, chunk_size=2)
        done, total = stats_probe.checkpointed([CRASH], root_seed=0)
        assert total == 3 and done >= 1

    def test_counters_accumulate(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = CampaignRunner(SerialBackend(), cache=cache, chunk_size=2)
        runner.run([CRASH], root_seed=0)
        assert runner.units_completed == 3
        assert runner.units_cached == 0
        runner.run([CRASH], root_seed=0)
        assert runner.units_completed == 3
        assert runner.units_cached == 3
        status = runner.status()
        assert status["units_total"] == 6
        assert status["backend"]["backend"] == "serial"


class TestCrossBackendChain:
    """The acceptance criterion: serial -> pool -> socket, one shared
    store, every rerun 100% hits and byte-identical -- including a
    flat->sharded migration and a killed worker along the way."""

    def test_serial_pool_socket_all_hit_identically(self, tmp_path):
        specs = [CRASH, BYZ]
        cache = ResultCache(tmp_path / "store")

        serial = CampaignRunner(
            SerialBackend(), cache=cache, chunk_size=2
        ).run(specs, root_seed=5)
        assert serial.stats.cache_misses == serial.stats.units_total
        baseline = canonical(serial.rows)

        # demote the entire store to the legacy flat layout: the pool
        # rerun must migrate it back transparently, at 100% hits
        _demote_to_flat(cache)
        pooled = CampaignRunner(
            PoolBackend(workers=2), cache=cache, chunk_size=2
        ).run(specs, root_seed=5)
        assert pooled.stats.cache_hits == pooled.stats.units_total
        assert canonical(pooled.rows) == baseline

        # third pass over the socket backend, worker killed mid-run:
        # still 100% hits (nothing recomputes), still identical bytes
        dying = WorkerServer(max_units=1)
        dying.start()
        survivor = WorkerServer()
        survivor.start()
        try:
            backend = SocketBackend(
                [dying.address, survivor.address], unit_timeout_s=30.0
            )
            remote = CampaignRunner(
                backend, cache=cache, chunk_size=2
            ).run(specs, root_seed=5)
        finally:
            dying.stop()
            survivor.stop()
        assert remote.stats.cache_hits == remote.stats.units_total
        assert canonical(remote.rows) == baseline

    def test_socket_kill_and_requeue_byte_identical(self, tmp_path):
        """Cold store + killed worker: requeued computation produces
        the same bytes as an undisturbed serial campaign."""
        specs = [CRASH]
        reference = CampaignRunner(SerialBackend(), chunk_size=2).run(
            specs, root_seed=9
        )
        dying = WorkerServer(max_units=1)
        dying.start()
        survivor = WorkerServer()
        survivor.start()
        try:
            backend = SocketBackend(
                [dying.address, survivor.address],
                heartbeat_s=5.0,
                unit_timeout_s=30.0,
            )
            cache = ResultCache(tmp_path / "cold")
            remote = CampaignRunner(
                backend, cache=cache, chunk_size=2
            ).run(specs, root_seed=9)
        finally:
            dying.stop()
            survivor.stop()
        assert dying.units_done == 1  # it really did die mid-campaign
        assert remote.stats.cache_misses == remote.stats.units_total
        assert canonical(remote.rows) == canonical(reference.rows)


class TestExecutorFacade:
    """SweepExecutor delegates to the campaign tier transparently."""

    def test_backend_name_override(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = SweepExecutor(cache=cache, backend="serial").run([CRASH])
        b = SweepExecutor(
            workers=2, cache=cache, backend="pool"
        ).run([CRASH])
        assert canonical(a.rows) == canonical(b.rows)
        assert b.stats.cache_hits == b.stats.units_total

    def test_backend_instance_override(self, tmp_path):
        worker = WorkerServer()
        worker.start()
        try:
            backend = SocketBackend([worker.address], unit_timeout_s=30.0)
            remote = SweepExecutor(cache=None, backend=backend).run(
                [CRASH], root_seed=2
            )
        finally:
            worker.stop()
        local = SweepExecutor().run([CRASH], root_seed=2)
        assert canonical(remote.rows) == canonical(local.rows)
        assert remote.stats.workers == 1
