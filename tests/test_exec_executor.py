"""Tests for repro.exec.executor: chunking, stats (including merge),
serial fallback, checkpoint/resume accounting."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    ExecStats,
    ResultCache,
    ScenarioSpec,
    SweepExecutor,
    run_trial,
    derive_seed,
)

CRASH = ScenarioSpec(kind="crash", r=1, t=1, trials=5, protocol="crash-flood")


class TestConfiguration:
    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="workers"):
            SweepExecutor(workers=0)

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            SweepExecutor(chunk_size=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ScenarioSpec(kind="gremlin", r=1, t=1)

    def test_zero_trials_rejected(self):
        with pytest.raises(ConfigurationError, match="trials"):
            ScenarioSpec(kind="crash", r=1, t=1, trials=0)


class TestChunking:
    def test_unit_count_follows_chunk_size(self):
        executor = SweepExecutor(chunk_size=2)
        result = executor.run([CRASH])  # 5 trials -> 3 units (2+2+1)
        assert result.stats.units_total == 3
        assert result.stats.trials_total == 5
        assert result.stats.trials_computed == 5
        assert len(result.rows[0]) == 5

    def test_chunk_size_does_not_change_rows(self):
        fine = SweepExecutor(chunk_size=1).run([CRASH])
        coarse = SweepExecutor(chunk_size=64).run([CRASH])
        assert fine.rows == coarse.rows

    def test_rows_are_trial_index_ordered(self):
        """Row i of the output is exactly run_trial(spec, seed_i)."""
        result = SweepExecutor(chunk_size=2).run([CRASH], root_seed=3)
        key = CRASH.scenario_key()
        expected = [
            run_trial(CRASH, derive_seed(3, key, i))
            for i in range(CRASH.trials)
        ]
        assert result.rows[0] == expected


class TestStats:
    def test_wall_clock_recorded(self):
        result = SweepExecutor().run([CRASH])
        assert result.stats.wall_clock_s > 0

    def test_hit_fraction_empty_run(self):
        result = SweepExecutor().run([])
        assert result.stats.units_total == 0
        assert result.stats.hit_fraction == 0.0
        assert result.rows == []

    def test_as_dict_shape(self):
        stats = SweepExecutor().run([CRASH]).stats.as_dict()
        assert set(stats) == {
            "workers",
            "units_total",
            "cache_hits",
            "cache_misses",
            "hit_fraction",
            "trials_total",
            "trials_computed",
            "wall_clock_s",
            "cache_enabled",
        }


class TestStatsMerge:
    A = ExecStats(
        workers=2,
        units_total=3,
        cache_hits=1,
        cache_misses=2,
        trials_total=12,
        trials_computed=8,
        wall_clock_s=0.5,
        cache_enabled=True,
    )
    B = ExecStats(
        workers=4,
        units_total=5,
        cache_hits=5,
        cache_misses=0,
        trials_total=20,
        trials_computed=0,
        wall_clock_s=0.25,
        cache_enabled=False,
    )

    def test_counts_add_workers_max_enabled_or(self):
        merged = self.A.merge(self.B)
        assert merged.units_total == 8
        assert merged.cache_hits == 6
        assert merged.cache_misses == 2
        assert merged.trials_total == 32
        assert merged.trials_computed == 8
        assert merged.wall_clock_s == 0.75
        assert merged.workers == 4
        assert merged.cache_enabled is True

    def test_merge_is_commutative(self):
        assert self.A.merge(self.B) == self.B.merge(self.A)

    def test_merge_is_associative(self):
        c = ExecStats(units_total=1, cache_hits=1, wall_clock_s=0.1)
        assert self.A.merge(self.B).merge(c) == self.A.merge(
            self.B.merge(c)
        )

    def test_add_operator_and_sum(self):
        assert self.A + self.B == self.A.merge(self.B)
        folded = sum([self.A, self.B], ExecStats())
        assert folded == self.A.merge(self.B)

    def test_identity_element(self):
        """ExecStats(workers=0) is a true identity for merge."""
        assert self.A.merge(ExecStats(workers=0)) == self.A
        assert ExecStats(workers=0).merge(self.A) == self.A

    def test_add_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            self.A + 3

    def test_merged_hit_fraction(self):
        assert self.A.merge(self.B).hit_fraction == 6 / 8

    def test_does_not_mutate_operands(self):
        before = self.A.as_dict()
        self.A.merge(self.B)
        assert self.A.as_dict() == before


class TestResume:
    def test_checkpointed_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(cache=cache, chunk_size=2)
        assert executor.checkpointed([CRASH]) == (0, 3)
        executor.run([CRASH])
        assert executor.checkpointed([CRASH]) == (3, 3)
        # no cache -> nothing checkpointed (default chunk_size=4 -> 2 units)
        assert SweepExecutor(cache=None).checkpointed([CRASH]) == (0, 2)

    def test_interrupted_run_resumes_partially(self, tmp_path):
        """Simulate an interruption by deleting one completed unit: the
        rerun recomputes only that unit and reproduces identical rows."""
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(cache=cache, chunk_size=2)
        full = executor.run([CRASH])
        victim = sorted(cache.entry_paths())[0]
        victim.unlink()
        resumed = executor.run([CRASH])
        assert resumed.stats.cache_hits == 2
        assert resumed.stats.cache_misses == 1
        assert resumed.rows == full.rows


class TestParallel:
    def test_parallel_equals_serial_crash(self):
        serial = SweepExecutor(workers=1, chunk_size=1).run([CRASH])
        parallel = SweepExecutor(workers=4, chunk_size=1).run([CRASH])
        assert parallel.rows == serial.rows
        assert parallel.stats.workers == 4

    def test_parallel_pool_not_spawned_for_single_unit(self):
        """One pending unit short-circuits to the serial path (no pool
        startup cost); the rows are the same either way."""
        one = ScenarioSpec(
            kind="crash", r=1, t=1, trials=2, protocol="crash-flood"
        )
        a = SweepExecutor(workers=8, chunk_size=4).run([one])
        b = SweepExecutor(workers=1, chunk_size=4).run([one])
        assert a.rows == b.rows
