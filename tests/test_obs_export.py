"""Tests for repro.obs.export: deterministic JSONL and metrics summaries.

Pins the export layer's reproducibility contract: a fixed-seed scenario
emits byte-identical JSONL on every run (golden hash), the summary is
JSON-exact (survives a round trip unchanged), and metrics collected under
the parallel sweep executor equal the serial ones row for row.
"""

import hashlib
import json

import pytest

from repro.exec.executor import SweepExecutor, unit_cache_key
from repro.exec.specs import ScenarioSpec
from repro.experiments.scenarios import byzantine_broadcast_scenario
from repro.obs import (
    OBS_SCHEMA_VERSION,
    JsonlRecorder,
    RunMetrics,
    canonical_json,
    metrics_summary,
    validate_event,
    validate_jsonl,
)

#: the golden scenario: fixed-seed Byzantine broadcast, r = t = 1
GOLDEN_KWARGS = dict(r=1, t=1, seed=7, placement="random")
GOLDEN_EVENTS = 643
GOLDEN_JSONL_SHA256 = (
    "4cbcceb64eadd604dba7a70aa309a104a6bd6073ae9ebfa5f211a617e4104c0c"
)
GOLDEN_SUMMARY_SHA256 = (
    "28d7bdcb4ea15955210689f86872b7bc85fe1ea2a02b23b47638d56dc3efd4cb"
)


def record_golden_run(record_deliveries=False):
    """One observed run of the golden scenario."""
    sc = byzantine_broadcast_scenario(**GOLDEN_KWARGS)
    recorder = JsonlRecorder(record_deliveries=record_deliveries)
    metrics = RunMetrics(source=sc.source)
    outcome = sc.run(observers=(recorder, metrics))
    return recorder, metrics, outcome


class TestGoldenJsonl:
    def test_exact_bytes(self):
        recorder, _, _ = record_golden_run()
        text = recorder.dumps()
        assert len(recorder.events) == GOLDEN_EVENTS
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        assert digest == GOLDEN_JSONL_SHA256

    def test_two_runs_byte_identical(self):
        a, _, _ = record_golden_run()
        b, _, _ = record_golden_run()
        assert a.dumps() == b.dumps()

    def test_header_and_trailer(self):
        recorder, _, outcome = record_golden_run()
        head = json.loads(recorder.lines()[0])
        tail = json.loads(recorder.lines()[-1])
        assert head["kind"] == "run_start"
        assert head["schema"] == OBS_SCHEMA_VERSION
        assert head["nodes"] == 49
        assert tail["kind"] == "run_end"
        assert tail["rounds"] == outcome.rounds
        assert tail["transmissions"] == outcome.messages
        assert tail["quiescent"] is True

    def test_round_end_carries_per_round_tx(self):
        recorder, metrics, _ = record_golden_run()
        per_round = {
            e["round"]: e["transmissions"]
            for e in recorder.events
            if e["kind"] == "round_end"
        }
        assert per_round == {
            r: metrics.tx_by_round.get(r, 0) for r in per_round
        }
        assert sum(per_round.values()) == metrics.transmissions

    def test_validates_against_schema(self):
        recorder, _, _ = record_golden_run()
        assert validate_jsonl(recorder.dumps()) == GOLDEN_EVENTS

    def test_deliveries_off_by_default(self):
        recorder, _, _ = record_golden_run()
        assert not any(e["kind"] == "deliver" for e in recorder.events)

    def test_deliveries_recorded_when_enabled(self):
        recorder, metrics, _ = record_golden_run(record_deliveries=True)
        delivers = [e for e in recorder.events if e["kind"] == "deliver"]
        assert len(delivers) == metrics.deliveries
        validate_jsonl(recorder.dumps())

    def test_dump_writes_file(self, tmp_path):
        recorder, _, _ = record_golden_run()
        path = tmp_path / "trace.jsonl"
        count = recorder.dump(path)
        assert count == GOLDEN_EVENTS
        assert path.read_text(encoding="utf-8") == recorder.dumps()


class TestValidate:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            validate_event({"kind": "teleport"})

    def test_missing_keys(self):
        with pytest.raises(ValueError, match="missing keys"):
            validate_event({"kind": "tx", "round": 0})

    def test_header_must_open_document(self):
        with pytest.raises(ValueError, match="run_start header"):
            validate_jsonl('{"kind":"round_start","round":0}\n')

    def test_schema_version_checked(self):
        bad = canonical_json(
            {"kind": "run_start", "schema": 999, "nodes": 1, "topology": "T"}
        )
        with pytest.raises(ValueError, match="unsupported"):
            validate_jsonl(bad + "\n")

    def test_invalid_json_line(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_jsonl("{nope}\n")

    def test_empty_document(self):
        with pytest.raises(ValueError, match="empty"):
            validate_jsonl("")


class TestMetricsSummary:
    def test_json_round_trip_exact(self):
        _, metrics, _ = record_golden_run()
        summary = metrics_summary(metrics)
        assert json.loads(json.dumps(summary)) == summary
        assert summary == metrics.summary()

    def test_golden_summary_hash(self):
        _, metrics, _ = record_golden_run()
        digest = hashlib.sha256(
            canonical_json(metrics_summary(metrics)).encode("utf-8")
        ).hexdigest()
        assert digest == GOLDEN_SUMMARY_SHA256

    def test_shape(self):
        _, metrics, _ = record_golden_run()
        summary = metrics_summary(metrics)
        assert summary["schema"] == OBS_SCHEMA_VERSION
        assert summary["source"] == [0, 0]
        assert summary["transmissions"] == metrics.transmissions
        assert summary["commits"] == len(metrics.commit_round)
        latency = summary["commit_latency"]
        assert latency["min"] <= latency["mean"] <= latency["max"]
        assert sum(n for _, n in latency["histogram"]) == summary["commits"]
        wave = summary["delivery_wavefront_by_round"]
        assert [r for r, _ in wave] == sorted(r for r, _ in wave)
        assert summary["tx_per_node"]["total"] == summary["transmissions"]
        assert summary["rx_per_node"]["total"] == summary["deliveries"]

    def test_empty_metrics_summary(self):
        summary = metrics_summary(RunMetrics())
        assert json.loads(json.dumps(summary)) == summary
        assert summary["commit_latency"]["min"] is None
        assert summary["tx_per_node"] == {
            "nodes": 0, "total": 0, "max": 0, "mean": 0.0, "argmax": None
        }


class TestSweepMetrics:
    SPEC = ScenarioSpec(
        kind="byzantine", r=1, t=1, trials=6, collect_metrics=True
    )

    def test_serial_and_parallel_rows_identical(self):
        serial = SweepExecutor(workers=1).run([self.SPEC], root_seed=7)
        parallel = SweepExecutor(workers=4).run([self.SPEC], root_seed=7)
        assert serial.rows == parallel.rows
        for row in serial.rows[0]:
            summary = row["metrics"]
            assert summary["schema"] == OBS_SCHEMA_VERSION
            assert summary["transmissions"] == row["messages"]
            assert json.loads(json.dumps(summary)) == summary

    def test_metrics_do_not_change_the_simulation(self):
        bare_spec = ScenarioSpec(kind="byzantine", r=1, t=1, trials=6)
        bare = SweepExecutor(workers=1).run([bare_spec], root_seed=7)
        with_metrics = SweepExecutor(workers=1).run([self.SPEC], root_seed=7)
        # collect_metrics adds observation-only keys ("metrics" and the
        # wrong-commit count the adversary objective reads); everything
        # the simulation itself produced must be untouched
        stripped = [
            {
                k: v
                for k, v in row.items()
                if k not in ("metrics", "wrong_commits")
            }
            for row in with_metrics.rows[0]
        ]
        assert stripped == bare.rows[0]

    def test_collect_metrics_excluded_from_scenario_key(self):
        bare_spec = ScenarioSpec(kind="byzantine", r=1, t=1, trials=6)
        assert bare_spec.scenario_key() == self.SPEC.scenario_key()
        # ...but the work-unit cache key must differ (row shapes differ)
        assert unit_cache_key(bare_spec, 7, (0, 1)) != unit_cache_key(
            self.SPEC, 7, (0, 1)
        )
