"""Tests for repro.core.crash_argument, .l2_construction, .cpa_argument
and .earmark."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cpa_argument import (
    commit_threshold,
    paper_stage1_claim,
    stage1_initial_support,
    stage1_max_row,
    stage1_row_commits,
    stage1_row_support,
    stage2_corner_support,
    stage2_remaining_support,
    theorem6_row,
    theorem6_table,
)
from repro.core.crash_argument import (
    crash_inductive_step_holds,
    frontier_segments,
    neighbors_in_half,
    stage_one_split,
)
from repro.core.earmark import earmarked_reports, family_watchlist, watchlist_size
from repro.core.l2_construction import (
    disc_points,
    l2_argument_row,
    l2_disjoint_path_count,
    worst_case_pq,
)
from repro.core.paths import u_node_paths
from repro.core.thresholds import crash_linf_threshold
from repro.faults.placement import greedy_random_placement


class TestCrashArgument:
    def test_stage_one_split_counts(self):
        faults = [(0, 1), (0, -1), (1, 0), (0, 0)]  # one on each axis+center
        split = stage_one_split(faults, 0, 0, 2)
        assert split.top == 1 and split.bottom == 1
        assert split.left == 0 and split.right == 1
        assert split.bound == 6

    def test_split_inequalities_for_valid_placement(self, rng):
        """With < r(2r+1) faults total in the neighborhood, one half of
        each split is strictly under r(r+1) -- the proof's pigeonhole."""
        r = 2
        box = [(x, y) for x in range(-r, r + 1) for y in range(-r, r + 1)]
        for _ in range(10):
            k = rng.randint(0, crash_linf_threshold(r) - 1)
            faults = rng.sample(box, k)
            split = stage_one_split(faults, 0, 0, r)
            assert split.horizontal_ok
            assert split.vertical_ok

    def test_frontier_segments_shape(self):
        segs = frontier_segments(0, 0, 2)
        assert len(segs["top"]) == 5
        assert all(y == 3 for _, y in segs["top"])
        assert len(segs["left"]) == 5
        assert all(x == -3 for x, _ in segs["left"])

    def test_neighbors_in_half_count(self):
        """The proof's claim: each top-frontier node has exactly r(r+1)
        neighbors in the top half."""
        r = 2
        for x in range(-r, r + 1):
            nbrs = neighbors_in_half((x, r + 1), 0, 0, r, "top")
            assert len(nbrs) >= r * (r + 1)

    def test_corner_frontier_node_exact_count(self):
        r = 3
        nbrs = neighbors_in_half((-r, r + 1), 0, 0, r, "top")
        assert len(nbrs) == r * (r + 1)

    @given(st.integers(min_value=0, max_value=40), st.integers(1, 2))
    @settings(max_examples=15)
    def test_inductive_step_holds_below_threshold(self, seed, r):
        """Theorem 5 executable: any budget-respecting placement lets the
        frontier hear the broadcast."""
        rng = random.Random(seed)
        box = [
            (x, y)
            for x in range(-3 * r, 3 * r + 1)
            for y in range(-3 * r, 3 * r + 1)
        ]
        faults = greedy_random_placement(
            box, crash_linf_threshold(r) - 1, r, rng=rng
        )
        holds, stuck = crash_inductive_step_holds(faults, 0, 0, r)
        assert holds, stuck

    def test_inductive_step_fails_at_threshold_strip(self):
        r = 2
        strip = {
            (x, y) for x in range(1, 1 + r) for y in range(-9, 10)
        }
        holds, stuck = crash_inductive_step_holds(strip, 0, 0, r)
        assert not holds
        assert all(x == r + 1 for x, _ in stuck)  # the cut-off right edge


class TestL2Construction:
    def test_worst_case_pq_distance(self):
        for r in (2, 5, 9):
            p, q, m = worst_case_pq(r)
            d = math.hypot(q[0] - p[0], q[1] - p[1])
            assert d <= r * math.sqrt(2) < d + 1

    def test_disc_points_count(self):
        pts = disc_points((0, 0), 2)
        assert len(pts) == 13

    def test_endpoints_inside_disc(self):
        for r in (2, 4, 6):
            p, q, m = worst_case_pq(r)
            pts = set(disc_points(m, r))
            assert p in pts and q in pts

    @pytest.mark.parametrize("r", [2, 3, 4, 5])
    def test_argument_holds(self, r):
        row = l2_argument_row(r)
        assert row.argument_holds, row

    def test_count_grows_quadratically(self):
        c3 = l2_disjoint_path_count(3)
        c6 = l2_disjoint_path_count(6)
        assert c6 >= 3 * c3  # ~4x expected; 3x is a safe floor

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            worst_case_pq(0)


class TestCPAArgument:
    @pytest.mark.parametrize("r", [2, 3, 5, 8, 13, 21, 50])
    def test_all_inequalities_hold(self, r):
        assert theorem6_row(r).all_inequalities_hold

    def test_initial_support_beats_2t_plus_1(self):
        for r in range(2, 60):
            assert stage1_initial_support(r) >= commit_threshold(r)

    def test_stage1_monotone_decreasing_support(self):
        r = 20
        supports = [stage1_row_support(r, i) for i in range(1, 8)]
        assert supports == sorted(supports, reverse=True)

    def test_stage1_max_row_meets_claims(self):
        for r in range(2, 80):
            rows = stage1_max_row(r)
            assert rows >= paper_stage1_claim(r)
            assert rows >= r // 3

    def test_stage1_row1_always_commits(self):
        for r in range(2, 40):
            assert stage1_row_commits(r, 1)

    def test_stage2_supports(self):
        for r in range(2, 40):
            assert stage2_corner_support(r) >= commit_threshold(r)
            assert stage2_remaining_support(r) > 4 * r * r / 3

    def test_paper_11r2_over_6_bound(self):
        """Fig. 17's explicit inequality for the corner support."""
        for r in range(2, 40):
            assert stage2_corner_support(r) >= 11 * r * r / 6

    def test_table_shape(self):
        rows = theorem6_table([2, 3])
        assert len(rows) == 2
        assert rows[0]["holds"]

    def test_row_index_validation(self):
        with pytest.raises(ValueError):
            stage1_row_support(5, 0)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            commit_threshold(0)


class TestEarmark:
    def test_corner_watchlist_shape(self):
        r = 2
        wl = earmarked_reports(0, 0, r)
        assert len(wl) == r * (2 * r + 1)
        # direct entries (region R) have a single empty chain
        direct = [chains for chains in wl.values() if chains == [()]]
        assert len(direct) == r * (r + 1)

    def test_indirect_chains_oriented_for_watcher(self):
        """The first relay of each earmarked chain must be adjacent to P
        (it is the node P physically hears)."""
        from repro.core.paths import corner_P
        from repro.geometry.metrics import LINF

        r = 2
        p = corner_P(0, 0, r)
        wl = earmarked_reports(0, 0, r)
        for chains in wl.values():
            for chain in chains:
                if chain:
                    assert LINF.within(chain[0], p, r)

    def test_watchlist_size(self):
        wl = earmarked_reports(0, 0, 1)
        # 3 origins: 2 direct (1 chain) + 1 indirect (3 chains)
        assert watchlist_size(wl) == 2 * 1 + 1 * 3

    def test_family_watchlist_reverses_relays(self):
        fam = u_node_paths(0, 0, 2, 1, 2)
        chains = family_watchlist(fam)
        assert len(chains) == 10
        for path, chain in zip(fam.paths, chains):
            assert chain == tuple(reversed(path[1:-1]))

    def test_offset_positions(self):
        wl = earmarked_reports(0, 0, 2, l=1)
        assert len(wl) >= 10
