"""The incremental budget tracker vs the batch counter, plus the
mutation kernels' determinism and validity guarantees."""

import random

import pytest

from repro.adversary import FaultBudget, MOVE_KERNELS
from repro.errors import InvalidPlacementError
from repro.exec import derive_seed
from repro.faults.placement import (
    fault_counts_per_nbd,
    max_faults_in_any_nbd,
)
from repro.grid.torus import Torus


def assert_consistent(budget, topology=None):
    """The invariant: incremental counts == batch recount, budget held."""
    expected = fault_counts_per_nbd(
        budget.faults, budget.r, metric=budget.metric, topology=topology
    )
    assert budget._counts == expected
    assert budget.worst() <= budget.t


class TestFaultBudget:
    def test_empty(self):
        b = FaultBudget(2, 1)
        assert len(b) == 0
        assert b.worst() == 0
        assert b.faults == frozenset()
        assert (0, 0) not in b

    def test_add_remove_matches_batch_counter(self):
        torus = Torus.square(9, 1)
        rng = random.Random(derive_seed(0, "budget-fuzz", 0))
        b = FaultBudget(3, 1, topology=torus)
        nodes = sorted(torus.nodes())
        for _ in range(200):
            node = rng.choice(nodes)
            if node in b:
                b.remove(node)
            elif b.can_add(node):
                b.add(node)
            assert_consistent(b, torus)

    def test_add_refuses_budget_violation(self):
        b = FaultBudget(1, 1)
        b.add((0, 0))
        assert not b.can_add((1, 0))
        with pytest.raises(InvalidPlacementError):
            b.add((1, 0))
        # far away is fine
        assert b.can_add((5, 5))

    def test_add_duplicate_raises(self):
        b = FaultBudget(2, 1)
        b.add((0, 0))
        assert not b.can_add((0, 0))
        with pytest.raises(InvalidPlacementError):
            b.add((0, 0))

    def test_remove_missing_raises(self):
        b = FaultBudget(2, 1)
        with pytest.raises(InvalidPlacementError):
            b.remove((3, 3))

    def test_canonicalization_on_torus(self):
        torus = Torus.square(7, 1)
        b = FaultBudget(2, 1, topology=torus)
        b.add((7, 7))  # wraps to (0, 0)
        assert (0, 0) in b
        with pytest.raises(InvalidPlacementError):
            b.add((0, 0))

    def test_worst_matches_placement_module(self):
        torus = Torus.square(9, 1)
        b = FaultBudget(
            3, 1, topology=torus, faults=[(0, 0), (1, 1), (4, 4), (5, 4)]
        )
        assert b.worst() == max_faults_in_any_nbd(
            b.faults, 1, topology=torus
        )

    def test_headroom(self):
        b = FaultBudget(2, 1)
        assert b.headroom((0, 0)) == 2
        b.add((0, 0))
        assert b.headroom((1, 1)) == 1
        b.add((1, 1))
        assert b.headroom((0, 1)) == 0

    def test_copy_is_independent(self):
        torus = Torus.square(7, 1)
        b = FaultBudget(2, 1, topology=torus, faults=[(3, 3)])
        dup = b.copy()
        dup.add((6, 6))
        assert (6, 6) in dup
        assert (6, 6) not in b
        assert_consistent(b, torus)
        assert_consistent(dup, torus)

    def test_iteration_is_sorted(self):
        b = FaultBudget(2, 1, faults=[(5, 5), (0, 0), (3, 1)])
        assert list(b) == sorted(b.faults)

    def test_negative_budget_rejected(self):
        with pytest.raises(InvalidPlacementError):
            FaultBudget(-1, 1)


class TestMoveKernels:
    def make(self, t=2, faults=((3, 3),)):
        torus = Torus.square(9, 1)
        budget = FaultBudget(t, 1, topology=torus, faults=faults)
        candidates = tuple(
            sorted(n for n in torus.nodes() if n != (0, 0))
        )
        return torus, budget, candidates

    @pytest.mark.parametrize("name", sorted(MOVE_KERNELS))
    def test_kernels_preserve_validity(self, name):
        torus, budget, candidates = self.make()
        rng = random.Random(derive_seed(0, f"kernel:{name}", 0))
        kernel = MOVE_KERNELS[name]
        for _ in range(40):
            kernel(budget, rng, candidates)
            assert_consistent(budget, torus)
            assert (0, 0) not in budget

    @pytest.mark.parametrize("name", sorted(MOVE_KERNELS))
    def test_kernels_deterministic_given_seed(self, name):
        kernel = MOVE_KERNELS[name]
        results = []
        for _ in range(2):
            _, budget, candidates = self.make()
            rng = random.Random(derive_seed(7, f"kernel:{name}", 1))
            changes = [kernel(budget, rng, candidates) for _ in range(20)]
            results.append((changes, budget.faults))
        assert results[0] == results[1]

    def test_remove_on_empty_is_noop(self):
        _, budget, candidates = self.make(faults=())
        rng = random.Random(1)
        assert not MOVE_KERNELS["remove"](budget, rng, candidates)
        assert not MOVE_KERNELS["relocate"](budget, rng, candidates)
        assert not MOVE_KERNELS["cluster"](budget, rng, candidates)

    def test_cluster_adds_near_existing_fault(self):
        torus, budget, candidates = self.make(t=3, faults=((4, 4),))
        rng = random.Random(derive_seed(0, "kernel:cluster-near", 0))
        assert MOVE_KERNELS["cluster"](budget, rng, candidates)
        new = set(budget.faults) - {(4, 4)}
        (added,) = new
        assert torus.distance(added, (4, 4)) <= 2 * budget.r

    def test_add_saturated_is_noop(self):
        torus = Torus.square(3, 1)  # one ball covers everything at r=1
        budget = FaultBudget(1, 1, topology=torus, faults=[(1, 1)])
        candidates = tuple(
            sorted(n for n in torus.nodes() if n != (0, 0))
        )
        rng = random.Random(2)
        assert not MOVE_KERNELS["add"](budget, rng, candidates)
