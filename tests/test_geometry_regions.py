"""Tests for repro.geometry.regions (integer rectangles)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.regions import Rect, rect_from_extents

small = st.integers(min_value=-15, max_value=15)
rects = st.builds(Rect, small, small, small, small)


class TestBasics:
    def test_len_and_iteration(self):
        r = Rect(0, 2, 0, 1)
        assert len(r) == 6
        assert len(list(r)) == 6
        assert (0, 0) in r and (2, 1) in r
        assert (3, 0) not in r

    def test_empty(self):
        r = Rect(5, 4, 0, 0)
        assert r.is_empty
        assert len(r) == 0
        assert list(r) == []
        assert (5, 0) not in r

    def test_width_height(self):
        r = Rect(-1, 1, 2, 2)
        assert r.width == 3 and r.height == 1

    def test_row_major_order(self):
        assert list(Rect(0, 1, 0, 1)) == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_corners(self):
        assert Rect(0, 2, 1, 3).corners() == ((0, 1), (2, 1), (0, 3), (2, 3))


class TestOps:
    @given(rects, small, small)
    def test_translate_preserves_len(self, r, dx, dy):
        assert len(r.translate(dx, dy)) == len(r)

    @given(rects, small, small)
    def test_translate_points(self, r, dx, dy):
        moved = {(x + dx, y + dy) for x, y in r}
        assert set(r.translate(dx, dy)) == moved

    @given(rects, rects)
    def test_intersect_is_set_intersection(self, a, b):
        assert set(a.intersect(b)) == set(a) & set(b)

    @given(rects, rects)
    def test_intersects_consistent(self, a, b):
        assert a.intersects(b) == bool(set(a) & set(b))

    @given(rects)
    def test_contains_rect_self(self, a):
        assert a.contains_rect(a)

    @given(rects, rects)
    def test_contains_rect_semantics(self, a, b):
        if a.contains_rect(b):
            assert set(b) <= set(a)

    def test_contains_empty_always(self):
        assert Rect(0, 0, 0, 0).contains_rect(Rect(5, 4, 9, 2))

    def test_ball_linf(self):
        b = Rect.ball_linf((1, 1), 2)
        assert b == Rect(-1, 3, -1, 3)
        assert len(b) == 25

    def test_rect_from_extents_name_ignored(self):
        assert rect_from_extents(0, 1, 0, 1, name="A") == Rect(0, 1, 0, 1)
