"""Tests for repro.core.regions and repro.core.paths: the Table I /
Figures 1-7 constructions, mechanically checked."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.paths import (
    arbitrary_p_connectivity,
    corner_connectivity,
    corner_P,
    direct_family,
    s1_node_paths,
    s2_node_paths,
    translated_family,
    u_node_paths,
)
from repro.core.regions import (
    expected_region_sizes,
    expected_S1_path_counts,
    expected_U_path_counts,
    region_M,
    region_R,
    region_S1,
    region_S2,
    region_U,
    table1_S1_regions,
    table1_U_regions,
)
from repro.core.witnesses import verify_connectivity_map, verify_family
from repro.geometry.metrics import LINF

radii = st.integers(min_value=1, max_value=6)
centers = st.tuples(
    st.integers(min_value=-5, max_value=5), st.integers(min_value=-5, max_value=5)
)


def upq(draw_r):
    """Strategy for valid (r, p, q) triples with r >= q > p >= 1."""
    return draw_r.flatmap(
        lambda r: st.tuples(
            st.just(r),
            st.integers(min_value=1, max_value=max(1, r - 1)),
            st.integers(min_value=2, max_value=r),
        ).filter(lambda t: t[0] >= t[2] > t[1] >= 1)
    )


class TestRegionCardinalities:
    @given(centers, radii)
    def test_M_size(self, c, r):
        assert len(region_M(c[0], c[1], r)) == r * (2 * r + 1)

    @given(centers, radii)
    def test_R_size(self, c, r):
        assert len(region_R(c[0], c[1], r)) == r * (r + 1)

    @given(centers, radii)
    def test_partition(self, c, r):
        """M = R + U + S1 + S2, disjointly (the Fig. 3 decomposition)."""
        a, b = c
        m = set(region_M(a, b, r))
        parts = [
            set(region_R(a, b, r)),
            set(region_U(a, b, r)),
            set(region_S1(a, b, r)),
            set(region_S2(a, b, r)),
        ]
        assert sum(len(p) for p in parts) == len(m)
        union = set().union(*parts)
        assert union == m

    @given(radii)
    def test_expected_sizes_formulae(self, r):
        sizes = expected_region_sizes(r)
        assert sizes["M"] == sizes["R"] + sizes["U"] + sizes["S1"] + sizes["S2"]

    @given(centers, radii)
    def test_M_inside_nbd(self, c, r):
        a, b = c
        assert all(
            LINF.within(p, (a, b), r) for p in region_M(a, b, r)
        )

    @given(centers, radii)
    def test_R_nodes_adjacent_to_P(self, c, r):
        a, b = c
        p = corner_P(a, b, r)
        assert all(LINF.within(n, p, r) for n in region_R(a, b, r))


class TestTable1:
    @given(st.integers(min_value=2, max_value=6).flatmap(
        lambda r: st.tuples(
            st.just(r),
            st.integers(min_value=1, max_value=r - 1),
            st.integers(min_value=2, max_value=r),
        )
    ).filter(lambda t: t[2] > t[1]))
    def test_region_counts_match_claims(self, rpq):
        r, p, q = rpq
        regions = table1_U_regions(0, 0, r, p, q)
        claims = expected_U_path_counts(r, p, q)
        assert len(regions["A"]) == claims["A"]
        assert len(regions["B1"]) == len(regions["B2"]) == claims["B"]
        assert len(regions["C1"]) == len(regions["C2"]) == claims["C"]
        assert (
            len(regions["D1"])
            == len(regions["D2"])
            == len(regions["D3"])
            == claims["D"]
        )
        assert claims["total"] == r * (2 * r + 1)

    @given(st.integers(min_value=2, max_value=6).flatmap(
        lambda r: st.tuples(
            st.just(r),
            st.integers(min_value=1, max_value=r - 1),
            st.integers(min_value=2, max_value=r),
        )
    ).filter(lambda t: t[2] > t[1]))
    def test_regions_pairwise_disjoint(self, rpq):
        r, p, q = rpq
        regions = table1_U_regions(0, 0, r, p, q)
        names = list(regions)
        for i, x in enumerate(names):
            for y in names[i + 1 :]:
                shared = set(regions[x]) & set(regions[y])
                assert not shared, f"{x} and {y} overlap: {shared}"

    @given(st.integers(min_value=2, max_value=6).flatmap(
        lambda r: st.tuples(
            st.just(r),
            st.integers(min_value=1, max_value=r - 1),
            st.integers(min_value=2, max_value=r),
        )
    ).filter(lambda t: t[2] > t[1]))
    def test_region_memberships(self, rpq):
        """A, B1, C1, D1 in nbd(N); A, B2, C2, D3 in nbd(P) -- the claims
        the paths rely on."""
        r, p, q = rpq
        n = (p, q)
        pt = corner_P(0, 0, r)
        regions = table1_U_regions(0, 0, r, p, q)
        for name in ("A", "B1", "C1", "D1"):
            assert all(LINF.within(z, n, r) for z in regions[name]), name
        for name in ("A", "B2", "C2", "D3"):
            assert all(LINF.within(z, pt, r) for z in regions[name]), name

    @given(st.integers(min_value=2, max_value=6).flatmap(
        lambda r: st.tuples(
            st.just(r),
            st.integers(min_value=1, max_value=r - 1),
            st.integers(min_value=2, max_value=r),
        )
    ).filter(lambda t: t[2] > t[1]))
    def test_d1_d2_full_adjacency(self, rpq):
        """Every D1 node neighbors every D2 node (any pairing works)."""
        r, p, q = rpq
        regions = table1_U_regions(0, 0, r, p, q)
        for u in regions["D1"]:
            for v in regions["D2"]:
                assert LINF.within(u, v, r)

    def test_s1_regions(self):
        regions = table1_S1_regions(0, 0, 3, 1)
        counts = expected_S1_path_counts(3, 1)
        assert len(regions["J"]) == counts["J"]
        assert len(regions["K1"]) == len(regions["K2"]) == counts["K"]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            table1_U_regions(0, 0, 2, 2, 2)  # q must exceed p
        with pytest.raises(ValueError):
            table1_S1_regions(0, 0, 2, 2)  # p <= r-1


class TestPathFamilies:
    @given(st.integers(min_value=2, max_value=5).flatmap(
        lambda r: st.tuples(
            st.just(r),
            st.integers(min_value=1, max_value=r - 1),
            st.integers(min_value=2, max_value=r),
        )
    ).filter(lambda t: t[2] > t[1]), centers)
    def test_u_family_verifies(self, rpq, c):
        r, p, q = rpq
        fam = u_node_paths(c[0], c[1], r, p, q)
        verify_family(fam, r, expected_count=r * (2 * r + 1))

    @given(st.integers(min_value=1, max_value=5).flatmap(
        lambda r: st.tuples(st.just(r), st.integers(min_value=0, max_value=r - 1))
    ), centers)
    def test_s1_family_verifies(self, rp, c):
        r, p = rp
        fam = s1_node_paths(c[0], c[1], r, p)
        verify_family(fam, r, expected_count=r * (2 * r + 1))
        assert fam.center == (c[0] - r, c[1] + 1)  # the paper's nbd(a-r, b+1)

    @given(st.integers(min_value=2, max_value=5).flatmap(
        lambda r: st.tuples(
            st.just(r),
            st.integers(min_value=0, max_value=r - 2),
            st.integers(min_value=1, max_value=r - 1),
        )
    ).filter(lambda t: t[2] > t[1]))
    def test_s2_family_verifies(self, rpq):
        r, pp, qq = rpq
        fam = s2_node_paths(0, 0, r, qq, pp)
        verify_family(fam, r, expected_count=r * (2 * r + 1))
        assert fam.n == (-qq, -pp)

    @given(radii)
    def test_corner_connectivity_complete(self, r):
        fams = corner_connectivity(0, 0, r)
        assert set(fams) == set(region_M(0, 0, r))
        verify_connectivity_map(
            fams,
            r,
            required_nodes=r * (2 * r + 1),
            required_paths_each=r * (2 * r + 1),
        )

    @given(st.integers(min_value=1, max_value=4).flatmap(
        lambda r: st.tuples(st.just(r), st.integers(min_value=0, max_value=r))
    ))
    def test_arbitrary_p(self, rl):
        r, l = rl
        fams = arbitrary_p_connectivity(0, 0, r, l)
        verify_connectivity_map(
            fams,
            r,
            required_nodes=r * (2 * r + 1),
            required_paths_each=r * (2 * r + 1),
        )
        # all covered nodes must lie in nbd(a, b)
        assert all(LINF.within(n, (0, 0), r) for n in fams)

    def test_arbitrary_p_invalid_l(self):
        with pytest.raises(ValueError):
            arbitrary_p_connectivity(0, 0, 2, 3)

    def test_translated_family_verifies(self):
        fam = u_node_paths(0, 0, 3, 1, 2)
        moved = translated_family(fam, 7, -4)
        verify_family(moved, 3, expected_count=3 * 7)

    def test_direct_family(self):
        fam = direct_family((0, 1), (0, 2))
        assert fam.count == 1
        verify_family(fam, 1)

    def test_paths_lie_in_single_neighborhood_claimed_by_paper(self):
        """The U-construction's center is (a, b+r+1), per Fig. 5."""
        fam = u_node_paths(0, 0, 3, 1, 2)
        assert fam.center == (0, 4)
