"""Tests for repro.core.witnesses: negative cases (the checker must catch
every defect class)."""

import pytest

from repro.core.paths import PathFamily, direct_family, u_node_paths
from repro.core.witnesses import (
    family_relay_population,
    verify_connectivity_map,
    verify_family,
)
from repro.errors import WitnessError


def family(paths, n=(0, 0), p=(5, 5), center=None, kind="U"):
    return PathFamily(n=n, p=p, paths=tuple(paths), center=center, kind=kind)


class TestDefectDetection:
    def test_wrong_count(self):
        fam = family([((0, 0), (1, 1), (5, 5))], center=None)
        with pytest.raises(WitnessError, match="expected 2"):
            verify_family(fam, 5, expected_count=2)

    def test_wrong_endpoints(self):
        fam = family([((1, 1), (5, 5))])
        with pytest.raises(WitnessError, match="endpoints"):
            verify_family(fam, 5)

    def test_too_short_path(self):
        fam = family([((0, 0),)])
        with pytest.raises(WitnessError, match="fewer than two"):
            verify_family(fam, 5)

    def test_hop_exceeds_radius(self):
        fam = family([((0, 0), (3, 0), (5, 5))])
        with pytest.raises(WitnessError, match="exceeds radius"):
            verify_family(fam, 2)

    def test_repeated_node_on_path(self):
        fam = family([((0, 0), (1, 1), (1, 1), (5, 5))])
        with pytest.raises(WitnessError, match="repeats"):
            verify_family(fam, 5)

    def test_shared_relay_across_paths(self):
        fam = family(
            [((0, 0), (2, 2), (5, 5)), ((0, 0), (2, 2), (5, 5))],
        )
        with pytest.raises(WitnessError, match="two paths"):
            verify_family(fam, 5)

    def test_endpoint_used_as_relay(self):
        fam = family([((0, 0), (0, 0), (5, 5))])
        # repeated-node check fires first for this shape; use p as relay:
        fam2 = family([((0, 0), (5, 5), (5, 5))])
        for f in (fam, fam2):
            with pytest.raises(WitnessError):
                verify_family(f, 5)

    def test_endpoint_as_relay_distinct_paths(self):
        fam = family(
            [((0, 0), (1, 1), (5, 5)), ((0, 0), (5, 5), (5, 5))],
        )
        with pytest.raises(WitnessError):
            verify_family(fam, 5)

    def test_outside_claimed_neighborhood(self):
        fam = family([((0, 0), (1, 1), (2, 2))], p=(2, 2), center=(10, 10))
        with pytest.raises(WitnessError, match="outside the claimed"):
            verify_family(fam, 2)

    def test_no_center_skips_containment(self):
        fam = family([((0, 0), (1, 1), (2, 2))], p=(2, 2), center=None)
        verify_family(fam, 2)  # passes without containment obligation


class TestConnectivityMap:
    def test_too_few_nodes(self):
        fams = {(0, 1): direct_family((0, 1), (9, 9))}
        with pytest.raises(WitnessError, match="covers 1 nodes"):
            verify_connectivity_map(fams, 9, required_nodes=2)

    def test_key_mismatch(self):
        fams = {(0, 2): direct_family((0, 1), (5, 5))}
        with pytest.raises(WitnessError, match="does not match"):
            verify_connectivity_map(fams, 5)

    def test_direct_families_exempt_from_count(self):
        fams = {(0, 1): direct_family((0, 1), (1, 1))}
        verify_connectivity_map(fams, 2, required_paths_each=100)


class TestRelayPopulation:
    def test_direct_family_empty(self):
        assert family_relay_population(direct_family((0, 0), (1, 1))) == set()

    def test_u_family_relays_counted(self):
        fam = u_node_paths(0, 0, 2, 1, 2)
        relays = family_relay_population(fam)
        # r(2r+1)=10 paths: |A| one-relay + 2*|B|+2*|C| + 3*|D| relays
        assert len(relays) >= 10
        assert fam.n not in relays and fam.p not in relays
