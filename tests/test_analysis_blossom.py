"""Tests for the blossom maximum-matching engine, cross-checked against
networkx, plus the small-set packing reduction."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.blossom import (
    matching_size,
    max_cardinality_matching,
    max_small_set_packing,
)


class TestKnownGraphs:
    def test_empty(self):
        assert max_cardinality_matching([]) == {}

    def test_single_edge(self):
        m = max_cardinality_matching([(1, 2)])
        assert m == {1: 2, 2: 1}

    def test_path_three(self):
        assert matching_size([(1, 2), (2, 3)]) == 1

    def test_path_four(self):
        assert matching_size([(1, 2), (2, 3), (3, 4)]) == 2

    def test_triangle(self):
        assert matching_size([(1, 2), (2, 3), (3, 1)]) == 1

    def test_odd_cycle_five(self):
        edges = [(i, (i + 1) % 5) for i in range(5)]
        assert matching_size(edges) == 2

    def test_blossom_with_stem(self):
        """The canonical blossom case: an odd cycle hanging off a path.

        Vertices 0-1, then the 5-cycle 1-2-3-4-5-1: maximum matching 3.
        """
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]
        assert matching_size(edges) == 3

    def test_petersen_graph(self):
        g = nx.petersen_graph()
        assert matching_size(g.edges()) == 5  # perfect matching

    def test_self_loops_ignored(self):
        assert matching_size([(1, 1), (1, 2)]) == 1

    def test_symmetric_result(self):
        m = max_cardinality_matching([(1, 2), (3, 4)])
        for u, v in m.items():
            assert m[v] == u

    def test_hashable_node_labels(self):
        m = max_cardinality_matching([(("a", 1), ("b", 2))])
        assert len(m) == 2


class TestAgainstNetworkx:
    @given(
        seed=st.integers(min_value=0, max_value=300),
        n=st.integers(min_value=2, max_value=14),
        p=st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=40)
    def test_random_graphs(self, seed, n, p):
        g = nx.gnp_random_graph(n, p, seed=seed)
        ours = matching_size(g.edges())
        theirs = len(nx.max_weight_matching(g, maxcardinality=True))
        assert ours == theirs

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=20)
    def test_random_regular_ish(self, seed):
        rng = random.Random(seed)
        n = 12
        edges = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.3
        ]
        g = nx.Graph(edges)
        assert matching_size(edges) == len(
            nx.max_weight_matching(g, maxcardinality=True)
        )


class TestSmallSetPacking:
    def test_rejects_large_sets(self):
        with pytest.raises(ValueError):
            max_small_set_packing([frozenset({1, 2, 3})])

    def test_singletons(self):
        sets = [frozenset({i}) for i in range(5)]
        assert len(max_small_set_packing(sets)) == 5

    def test_conflicting_pairs(self):
        sets = [frozenset({1, 2}), frozenset({2, 3}), frozenset({3, 4})]
        assert len(max_small_set_packing(sets)) == 2

    def test_singleton_vs_pair_tradeoff(self):
        """{a} and {b} beat {a,b}."""
        sets = [frozenset({1}), frozenset({2}), frozenset({1, 2})]
        packing = max_small_set_packing(sets)
        assert len(packing) == 2

    def test_blossom_shaped_packing(self):
        """Odd-cycle conflicts need the blossom machinery to solve
        exactly: 5 pairs forming a 5-cycle pack 2, plus a free singleton."""
        sets = [frozenset({i, (i + 1) % 5}) for i in range(5)]
        sets.append(frozenset({99}))
        assert len(max_small_set_packing(sets)) == 3

    def test_packing_is_disjoint(self):
        rng = random.Random(0)
        universe = list(range(10))
        sets = {
            frozenset(rng.sample(universe, rng.choice([1, 2])))
            for _ in range(25)
        }
        packing = max_small_set_packing(sorted(sets, key=repr))
        used = set()
        for s in packing:
            assert used.isdisjoint(s)
            used |= s

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=30)
    def test_matches_branch_and_bound(self, seed):
        """The matching reduction and the generic B&B agree exactly."""
        from repro.analysis.packing import _greedy, _preprocess

        rng = random.Random(seed)
        universe = list(range(8))
        sets = sorted(
            {
                frozenset(rng.sample(universe, rng.choice([1, 2])))
                for _ in range(rng.randint(0, 12))
            },
            key=repr,
        )
        via_matching = len(max_small_set_packing(sets))
        # brute force oracle
        from itertools import combinations

        brute = 0
        for k in range(len(sets), 0, -1):
            for combo in combinations(sets, k):
                total = sum(len(s) for s in combo)
                union = set().union(*combo)
                if len(union) == total:
                    brute = k
                    break
            if brute:
                break
        assert via_matching == brute
