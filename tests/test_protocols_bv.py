"""Tests for the two Bhandari-Vaidya protocols (Sections VI and VI-B)."""

import pytest

from repro.core.thresholds import byzantine_linf_max_t, koo_impossibility_bound
from repro.errors import ConfigurationError
from repro.experiments.scenarios import (
    byzantine_broadcast_scenario,
    recommended_torus,
)
from repro.grid.torus import Torus
from repro.protocols.base import CommittedMsg, HeardMsg
from repro.protocols.bv_indirect import BVIndirectProtocol
from repro.protocols.bv_two_hop import BVTwoHopProtocol
from repro.protocols.registry import correct_process_map
from repro.radio.engine import Engine
from repro.radio.messages import Envelope
from repro.radio.run import run_broadcast


def fault_free_run(protocol, r=1, t=1, **kwargs):
    torus = recommended_torus(r)
    correct = set(torus.nodes())
    processes = correct_process_map(
        torus, protocol, t, (0, 0), 1, correct, **kwargs
    )
    return run_broadcast(torus, processes, 1, correct, max_rounds=100)


class TestTwoHopBasics:
    def test_fault_free_broadcast(self):
        out = fault_free_run("bv-two-hop")
        assert out.achieved

    def test_fault_free_r2(self):
        out = fault_free_run("bv-two-hop", r=2, t=4)
        assert out.achieved

    def test_exact_threshold_below(self):
        for r in (1, 2):
            for strategy in ("silent", "liar", "fabricator"):
                sc = byzantine_broadcast_scenario(
                    r=r,
                    t=byzantine_linf_max_t(r),
                    protocol="bv-two-hop",
                    strategy=strategy,
                )
                sc.validate()
                out = sc.run()
                assert out.achieved, (r, strategy, out.summary())

    def test_exact_threshold_at(self):
        """At Koo's bound the half-density strip blocks liveness for every
        strategy, and safety always holds."""
        for r in (1, 2):
            for strategy in ("silent", "fabricator"):
                sc = byzantine_broadcast_scenario(
                    r=r,
                    t=koo_impossibility_bound(r),
                    protocol="bv-two-hop",
                    strategy=strategy,
                )
                sc.validate()
                out = sc.run()
                assert out.safe, (r, strategy)
                assert not out.live, (r, strategy)

    def test_random_placements_below_threshold(self):
        for seed in range(3):
            sc = byzantine_broadcast_scenario(
                r=1,
                t=1,
                protocol="bv-two-hop",
                strategy="fabricator",
                placement="random",
                seed=seed,
            )
            sc.validate()
            assert sc.run().achieved


class TestTwoHopCommitRule:
    def _ctx_proc(self, t=1, r=1):
        torus = Torus.square(7, r)
        proc = BVTwoHopProtocol(t, (3, 3))
        eng = Engine(torus, {(0, 0): proc})
        return eng.context_of((0, 0)), proc

    def test_direct_chains_commit(self):
        ctx, proc = self._ctx_proc(t=1)
        proc.on_receive(ctx, Envelope((0, 1), CommittedMsg(1), 0, 0, 0))
        proc.on_receive(ctx, Envelope((1, 0), CommittedMsg(1), 1, 0, 0))
        proc.on_round_end(ctx)
        assert proc.committed_value() == 1

    def test_indirect_chain_counts(self):
        ctx, proc = self._ctx_proc(t=1)
        # direct: (0,1) committed 1; indirect: (1,0) reports (2,0)
        proc.on_receive(ctx, Envelope((0, 1), CommittedMsg(1), 0, 0, 0))
        proc.on_receive(
            ctx,
            Envelope((1, 0), HeardMsg(origin=(2, 0), value=1), 1, 0, 0),
        )
        proc.on_round_end(ctx)
        assert proc.committed_value() == 1

    def test_overlapping_chains_do_not_count_twice(self):
        """Two chains sharing the reporter pack as one."""
        ctx, proc = self._ctx_proc(t=1)
        proc.on_receive(
            ctx, Envelope((1, 0), HeardMsg(origin=(2, 0), value=1), 0, 0, 0)
        )
        proc.on_receive(
            ctx, Envelope((1, 0), HeardMsg(origin=(2, 1), value=1), 1, 0, 0)
        )
        proc.on_round_end(ctx)
        assert proc.committed_value() is None

    def test_same_origin_two_reporters_conflict(self):
        """Chains {N,m1} and {N,m2} share N: only one packs; commit needs
        a second disjoint chain."""
        ctx, proc = self._ctx_proc(t=1)
        proc.on_receive(
            ctx, Envelope((1, 0), HeardMsg(origin=(2, 0), value=1), 0, 0, 0)
        )
        proc.on_receive(
            ctx, Envelope((1, 1), HeardMsg(origin=(2, 0), value=1), 1, 0, 0)
        )
        proc.on_round_end(ctx)
        assert proc.committed_value() is None

    def test_implausible_report_discarded(self):
        """Reporter too far from claimed origin: geometric validation."""
        ctx, proc = self._ctx_proc(t=0)
        proc.on_receive(
            ctx, Envelope((1, 0), HeardMsg(origin=(3, 0), value=1), 0, 0, 0)
        )
        proc.on_round_end(ctx)
        assert proc.committed_value() is None

    def test_chains_must_fit_single_neighborhood(self):
        """Two disjoint chains on opposite sides of the node cannot be
        covered by one neighborhood: no commit."""
        ctx, proc = self._ctx_proc(t=1, r=1)
        # (0,0) local frame: chain A at (2,0)+(1,0); chain B at (-2,0)+(-1,0)
        # ((-2,0) wraps to (5,0) canonically)
        proc.on_receive(
            ctx, Envelope((1, 0), HeardMsg(origin=(2, 0), value=1), 0, 0, 0)
        )
        proc.on_receive(
            ctx, Envelope((6, 0), HeardMsg(origin=(5, 0), value=1), 1, 0, 0)
        )
        proc.on_round_end(ctx)
        assert proc.committed_value() is None

    def test_first_report_per_reporter_origin_wins(self):
        ctx, proc = self._ctx_proc(t=1)
        proc.on_receive(
            ctx, Envelope((1, 0), HeardMsg(origin=(2, 0), value=0), 0, 0, 0)
        )
        # same reporter, same origin, flipped value: ignored
        proc.on_receive(
            ctx, Envelope((1, 0), HeardMsg(origin=(2, 0), value=1), 1, 0, 0)
        )
        proc.on_receive(
            ctx, Envelope((0, 1), CommittedMsg(1), 2, 0, 0)
        )
        proc.on_receive(
            ctx, Envelope((1, 1), CommittedMsg(1), 3, 0, 0)
        )
        proc.on_round_end(ctx)
        assert proc.committed_value() == 1  # two direct chains for value 1

    def test_reports_relayed_for_others_even_after_commit(self):
        """A committed node must still emit HEARD for fresh announcements."""
        torus = recommended_torus(1)
        proc = BVTwoHopProtocol(0, (3, 3))
        eng = Engine(torus, {(0, 0): proc})
        ctx = eng.context_of((0, 0))
        proc.on_receive(ctx, Envelope((0, 1), CommittedMsg(1), 0, 0, 0))
        proc.on_round_end(ctx)
        assert proc.committed_value() == 1
        pending_before = ctx.pending
        proc.on_receive(ctx, Envelope((1, 0), CommittedMsg(1), 1, 0, 0))
        assert ctx.pending == pending_before + 1  # queued a HeardMsg


class TestIndirectProtocol:
    def test_fault_free_broadcast(self):
        out = fault_free_run("bv-indirect")
        assert out.achieved

    def test_threshold_below_r1(self):
        for strategy in ("silent", "liar", "fabricator"):
            sc = byzantine_broadcast_scenario(
                r=1,
                t=byzantine_linf_max_t(1),
                protocol="bv-indirect",
                strategy=strategy,
            )
            sc.validate()
            assert sc.run().achieved, strategy

    def test_threshold_at_r1(self):
        sc = byzantine_broadcast_scenario(
            r=1,
            t=koo_impossibility_bound(1),
            protocol="bv-indirect",
            strategy="silent",
        )
        sc.validate()
        out = sc.run()
        assert out.safe and not out.live

    def test_max_relays_validation(self):
        with pytest.raises(ConfigurationError):
            BVIndirectProtocol(1, (0, 0), max_relays=4)
        with pytest.raises(ConfigurationError):
            BVIndirectProtocol(1, (0, 0), max_relays=0)

    def test_deep_report_ignored(self):
        torus = Torus.square(9, 1)
        proc = BVIndirectProtocol(0, (4, 4), max_relays=1)
        eng = Engine(torus, {(0, 0): proc})
        ctx = eng.context_of((0, 0))
        deep = HeardMsg(origin=(3, 0), value=1, relays=((2, 0),))
        proc.on_receive(ctx, Envelope((1, 0), deep, 0, 0, 0))
        proc.on_round_end(ctx)
        assert proc.committed_value() is None

    def test_two_relay_determination(self):
        """t=0: a single plausible 2-relay path determines the origin and
        commits.  Origin must be within 2r of the evaluator (any farther
        and no single neighborhood can contain both endpoints)."""
        torus = Torus.square(9, 1)
        proc = BVIndirectProtocol(0, (4, 4))
        eng = Engine(torus, {(0, 0): proc})
        ctx = eng.context_of((0, 0))
        msg = HeardMsg(origin=(2, 0), value=1, relays=((1, 1),))
        proc.on_receive(ctx, Envelope((1, 0), msg, 0, 0, 0))
        proc.on_round_end(ctx)
        assert proc.committed_value() == 1

    def test_origin_beyond_2r_unusable(self):
        """A report whose origin is farther than 2r can never satisfy the
        single-neighborhood determination rule; it is filtered."""
        torus = Torus.square(9, 1)
        proc = BVIndirectProtocol(0, (4, 4))
        eng = Engine(torus, {(0, 0): proc})
        ctx = eng.context_of((0, 0))
        msg = HeardMsg(origin=(3, 0), value=1, relays=((2, 0),))
        proc.on_receive(ctx, Envelope((1, 0), msg, 0, 0, 0))
        proc.on_round_end(ctx)
        assert proc.committed_value() is None

    def test_implausible_relay_chain_discarded(self):
        torus = Torus.square(9, 1)
        proc = BVIndirectProtocol(0, (4, 4))
        eng = Engine(torus, {(0, 0): proc})
        ctx = eng.context_of((0, 0))
        # (2,0) -> (3,3) gap: not adjacent
        msg = HeardMsg(origin=(3, 3), value=1, relays=((2, 0),))
        proc.on_receive(ctx, Envelope((1, 0), msg, 0, 0, 0))
        proc.on_round_end(ctx)
        assert proc.committed_value() is None

    def test_chain_with_repeated_relay_discarded(self):
        torus = Torus.square(9, 1)
        proc = BVIndirectProtocol(0, (4, 4))
        eng = Engine(torus, {(0, 0): proc})
        ctx = eng.context_of((0, 0))
        msg = HeardMsg(origin=(2, 0), value=1, relays=((1, 0),))
        proc.on_receive(ctx, Envelope((1, 0), msg, 0, 0, 0))
        proc.on_round_end(ctx)
        assert proc.committed_value() is None

    def test_forwarding_depth_respected(self):
        """An honest node receiving a depth-3 chain records but does not
        forward it."""
        torus = Torus.square(11, 1)
        proc = BVIndirectProtocol(2, (5, 5))
        eng = Engine(torus, {(0, 0): proc})
        ctx = eng.context_of((0, 0))
        deep = HeardMsg(origin=(2, 2), value=1, relays=((1, 1), (2, 1)))
        before = ctx.pending
        proc.on_receive(ctx, Envelope((1, 0), deep, 0, 0, 0))
        assert ctx.pending == before  # full-depth: recorded, not forwarded

    def test_shallow_chain_forwarded(self):
        torus = Torus.square(11, 1)
        proc = BVIndirectProtocol(2, (5, 5))
        eng = Engine(torus, {(0, 0): proc})
        ctx = eng.context_of((0, 0))
        msg = HeardMsg(origin=(2, 1), value=1, relays=((1, 1),))
        before = ctx.pending
        proc.on_receive(ctx, Envelope((1, 0), msg, 0, 0, 0))
        assert ctx.pending == before + 1

    def test_two_hop_equivalence_flag(self):
        """bv-indirect with max_relays=1 succeeds like the 2-hop variant
        on its regime (it is the same message pattern; only the commit
        rule differs)."""
        out = fault_free_run("bv-indirect", max_relays=1)
        assert out.achieved


class TestSafetyNeverViolated:
    """Theorem 2 as a test: across every protocol x adversary x regime we
    ever run, no correct node commits a wrong value."""

    @pytest.mark.parametrize("protocol", ["cpa", "bv-two-hop", "bv-indirect"])
    @pytest.mark.parametrize("strategy", ["liar", "fabricator", "noise"])
    def test_safety_at_impossibility_budget(self, protocol, strategy):
        sc = byzantine_broadcast_scenario(
            r=1,
            t=koo_impossibility_bound(1),
            protocol=protocol,
            strategy=strategy,
        )
        sc.validate()
        assert sc.run().safe
