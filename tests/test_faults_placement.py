"""Tests for repro.faults.placement (the locally bounded adversary)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidPlacementError
from repro.faults.placement import (
    fault_counts_per_nbd,
    greedy_random_placement,
    is_valid_placement,
    max_faults_per_nbd,
    trim_to_budget,
    validate_placement,
)
from repro.grid.torus import Torus

coords = st.tuples(
    st.integers(min_value=-8, max_value=8),
    st.integers(min_value=-8, max_value=8),
)


class TestCounting:
    def test_single_fault(self):
        counts = fault_counts_per_nbd([(0, 0)], 2)
        assert counts[(0, 0)] == 1
        assert counts[(2, 2)] == 1
        assert (3, 0) not in counts
        assert len(counts) == 25  # the closed ball of centers

    def test_cluster(self):
        faults = [(0, 0), (1, 0), (0, 1)]
        worst, center = max_faults_per_nbd(faults, 1)
        assert worst == 3
        assert center in {(0, 0), (1, 1), (0, 1), (1, 0)}

    def test_counts_closed_ball_semantics(self):
        """A faulty node counts in its own neighborhood (paper: a faulty
        node may have up to t-1 faulty neighbors)."""
        counts = fault_counts_per_nbd([(5, 5)], 1)
        assert counts[(5, 5)] == 1

    def test_duplicates_ignored(self):
        a = fault_counts_per_nbd([(0, 0), (0, 0)], 1)
        b = fault_counts_per_nbd([(0, 0)], 1)
        assert a == b

    def test_empty(self):
        assert max_faults_per_nbd([], 2) == (0, None)
        assert is_valid_placement([], 0, 2)

    def test_torus_wrap_counting(self):
        t = Torus.square(7, 1)
        # (0,0) and (6,6) are wrapped neighbors: one nbd sees both
        worst, _ = max_faults_per_nbd([(0, 0), (6, 6)], 1, topology=t)
        assert worst == 2
        # without the torus they are far apart
        worst_inf, _ = max_faults_per_nbd([(0, 0), (6, 6)], 1)
        assert worst_inf == 1

    @given(st.lists(coords, min_size=0, max_size=12), st.integers(1, 3))
    def test_max_equals_bruteforce(self, faults, r):
        worst, _ = max_faults_per_nbd(faults, r)
        if not faults:
            assert worst == 0
            return
        xs = [f[0] for f in faults]
        ys = [f[1] for f in faults]
        brute = 0
        for cx in range(min(xs) - r, max(xs) + r + 1):
            for cy in range(min(ys) - r, max(ys) + r + 1):
                n = sum(
                    1
                    for f in set(faults)
                    if abs(f[0] - cx) <= r and abs(f[1] - cy) <= r
                )
                brute = max(brute, n)
        assert worst == brute


class TestValidation:
    def test_validate_passes(self):
        validate_placement([(0, 0), (5, 5)], 1, 1)

    def test_validate_raises_with_witness(self):
        with pytest.raises(InvalidPlacementError, match="budget is t=1"):
            validate_placement([(0, 0), (1, 1)], 1, 2)

    @given(st.lists(coords, max_size=10), st.integers(0, 5), st.integers(1, 3))
    def test_is_valid_consistent_with_validate(self, faults, t, r):
        ok = is_valid_placement(faults, t, r)
        try:
            validate_placement(faults, t, r)
            assert ok
        except InvalidPlacementError:
            assert not ok


class TestTrim:
    @given(st.lists(coords, max_size=16), st.integers(0, 4), st.integers(1, 2))
    def test_trim_always_valid(self, faults, t, r):
        trimmed = trim_to_budget(faults, t, r)
        assert is_valid_placement(trimmed, t, r)
        assert trimmed <= {tuple(f) for f in faults}

    def test_trim_noop_when_valid(self):
        faults = {(0, 0), (10, 10)}
        assert trim_to_budget(faults, 1, 2) == faults

    def test_trim_removes_minimum_for_simple_case(self):
        # three faults in one nbd with budget 2: exactly one removed
        faults = {(0, 0), (1, 0), (0, 1)}
        trimmed = trim_to_budget(faults, 2, 1)
        assert len(trimmed) == 2

    def test_trim_with_rng(self, rng):
        faults = {(0, 0), (1, 0), (0, 1), (1, 1)}
        trimmed = trim_to_budget(faults, 1, 1, rng=rng)
        assert is_valid_placement(trimmed, 1, 1)

    def test_trim_on_torus(self):
        t = Torus.square(7, 1)
        faults = {(0, 0), (6, 6), (6, 0), (0, 6)}  # all mutually wrapped-close
        trimmed = trim_to_budget(faults, 1, 1, topology=t)
        assert is_valid_placement(trimmed, 1, 1, topology=t)


class TestGreedyRandom:
    @given(st.integers(0, 3), st.integers(1, 2), st.integers(0, 5))
    def test_result_valid(self, t, r, seed):
        candidates = [(x, y) for x in range(-5, 6) for y in range(-5, 6)]
        placed = greedy_random_placement(
            candidates, t, r, rng=random.Random(seed)
        )
        assert is_valid_placement(placed, t, r)

    def test_target_count(self):
        candidates = [(x, y) for x in range(-8, 9) for y in range(-8, 9)]
        placed = greedy_random_placement(
            candidates, 3, 1, rng=random.Random(0), target_count=4
        )
        assert len(placed) == 4

    def test_zero_budget_places_nothing(self):
        placed = greedy_random_placement([(0, 0), (1, 1)], 0, 1)
        assert placed == set()

    def test_maximality(self):
        """No remaining candidate could be added without violation."""
        candidates = [(x, y) for x in range(-4, 5) for y in range(-4, 5)]
        placed = greedy_random_placement(
            candidates, 2, 1, rng=random.Random(1)
        )
        for cand in candidates:
            if cand in placed:
                continue
            assert not is_valid_placement(placed | {cand}, 2, 1)

    def test_torus_candidates(self):
        t = Torus.square(7, 1)
        placed = greedy_random_placement(
            list(t.nodes()), 2, 1, topology=t, rng=random.Random(2)
        )
        assert is_valid_placement(placed, 2, 1, topology=t)
