"""Property tests for repro.exec.seeds (deterministic seed derivation).

The derivation scheme is load-bearing for the whole execution layer: the
golden traces (``test_exec_golden.py``) pin the *consequences* of these
seeds, while this module pins the scheme itself -- collision freedom,
hash-randomization independence, and exact reference values.
"""

from __future__ import annotations

import os
import subprocess
import sys

from repro.exec import SEED_BITS, ScenarioSpec, derive_seed


class TestDerivation:
    def test_reference_values_pinned(self):
        """Exact values: any change to the scheme (hash function,
        truncation, material layout) fails here before it silently
        invalidates every cache entry and golden trace."""
        assert derive_seed(0, "alpha", 0) == 827455089532867320
        assert derive_seed(0, "alpha", 1) == 8084559294302850330
        assert (
            derive_seed(7, '{"kind":"byzantine"}', 3)
            == 4692596317371697902
        )

    def test_range(self):
        for seed in (
            derive_seed(0, "x", 0),
            derive_seed(2**40, "y" * 200, 10**6),
            derive_seed(-5, "", 0),
        ):
            assert 0 <= seed < 2**SEED_BITS

    def test_deterministic_within_process(self):
        assert derive_seed(3, "k", 9) == derive_seed(3, "k", 9)

    def test_root_seed_separates_streams(self):
        assert derive_seed(0, "k", 0) != derive_seed(1, "k", 0)

    def test_scenario_key_separates_streams(self):
        assert derive_seed(0, "a", 0) != derive_seed(0, "b", 0)


class TestCollisions:
    def test_no_collisions_in_10k_samples(self):
        """Distinct (scenario_key, trial_index) pairs never collide in
        10k samples under one root seed."""
        seen = {}
        for key_index in range(100):
            scenario_key = f"scenario-{key_index}"
            for trial_index in range(100):
                seed = derive_seed(0, scenario_key, trial_index)
                pair = (scenario_key, trial_index)
                assert seed not in seen or seen[seed] == pair, (
                    f"collision: {pair} vs {seen[seed]}"
                )
                seen[seed] = pair
        assert len(seen) == 10_000

    def test_realistic_scenario_keys_distinct(self):
        """Spec-derived keys (the production inputs) stay collision-free
        across a budget/kind grid."""
        seeds = set()
        for kind, protocol in (
            ("byzantine", "bv-two-hop"),
            ("crash", "crash-flood"),
        ):
            for t in range(10):
                spec = ScenarioSpec(
                    kind=kind, r=2, t=t, trials=1, protocol=protocol
                )
                for trial in range(50):
                    seeds.add(derive_seed(0, spec.scenario_key(), trial))
        assert len(seeds) == 2 * 10 * 50


class TestHashSeedIndependence:
    def test_stable_across_pythonhashseed(self):
        """The derivation must not involve ``hash()``: a fresh
        interpreter with a different PYTHONHASHSEED derives the same
        seeds."""
        program = (
            "from repro.exec import derive_seed\n"
            "print(derive_seed(0, 'alpha', 0))\n"
            "print(derive_seed(42, 'beta|gamma', 17))\n"
        )
        outputs = []
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            src_dir = os.path.join(
                os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                "src",
            )
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (src_dir, env.get("PYTHONPATH", "")) if p
            )
            result = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1] == outputs[2]
        assert outputs[0].splitlines()[0] == "827455089532867320"

    def test_scenario_key_is_hashseed_free(self):
        """Scenario keys are canonical JSON of plain fields -- no set
        iteration, no ``hash()`` -- so the same spec always serializes
        identically (checked here within-process; the subprocess test
        covers the cross-interpreter half)."""
        spec = ScenarioSpec(
            kind="byzantine",
            r=1,
            t=1,
            trials=3,
            scenario_kwargs=(("b", 2), ("a", 1)),
        )
        again = ScenarioSpec(
            kind="byzantine",
            r=1,
            t=1,
            trials=3,
            scenario_kwargs=(("a", 1), ("b", 2)),
        )
        assert spec.scenario_key() == again.scenario_key()
        assert '"scenario_kwargs":{"a":1,"b":2}' in spec.scenario_key()
