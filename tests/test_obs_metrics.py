"""Tests for repro.obs.metrics and repro.obs.profile.

The observer layer's central promise is purity: attaching observers (or a
profiler) never changes what a run computes, only what is recorded about
it.  These tests pin that promise plus the collector semantics
(per-round counters, wave-front radii, commit latency, crash counting).
"""

import pytest

from repro.grid.torus import Torus
from repro.obs import EngineObserver, PhaseProfiler, RunMetrics
from repro.radio.engine import Engine
from repro.radio.messages import Envelope
from repro.radio.node import FunctionProcess, NodeProcess


class Flooder(NodeProcess):
    """Broadcasts at start; every receiver re-broadcasts once (1 hop/round
    in end-of-round mode, a full cascade in immediate mode)."""

    def __init__(self, origin=False):
        self.origin = origin
        self.heard = False

    def on_start(self, ctx):
        if self.origin:
            ctx.broadcast("flood")

    def on_receive(self, ctx, env):
        if not self.heard:
            self.heard = True
            ctx.broadcast("flood")


class RoundCommitter(NodeProcess):
    """Commits to a fixed value during a chosen round's ``on_round``."""

    def __init__(self, commit_round, value="v"):
        self.commit_round = commit_round
        self.value = value
        self._committed = None

    def on_round(self, ctx):
        if ctx.round == self.commit_round:
            self._committed = self.value

    def committed_value(self):
        return self._committed


class StartCommitter(NodeProcess):
    """Commits during ``on_start`` (before round 0)."""

    def __init__(self, value="s"):
        self.value = value

    def committed_value(self):
        return self.value


def flood_processes(topology, origin):
    return {
        node: Flooder(origin=(node == origin)) for node in topology.nodes()
    }


class TestEngineObserverBase:
    def test_all_hooks_are_noops(self):
        obs = EngineObserver()
        env = Envelope((0, 0), "x", 0, 0, 0)
        obs.on_run_start(None)
        obs.on_round_start(0)
        obs.on_transmission(env, ((1, 1),))
        obs.on_delivery((1, 1), env)
        obs.on_commit((1, 1), 0, "v")
        obs.on_crash((1, 1), 0)
        obs.on_round_end(0)
        obs.on_run_end(None)

    def test_engine_without_observers_allocates_none(self):
        eng = Engine(Torus.square(5, 1), {})
        assert eng._observers == ()
        assert eng._profiler is None


class TestRunMetricsCounters:
    def test_totals_match_trace(self):
        t = Torus.square(5, 1)
        metrics = RunMetrics()
        eng = Engine(t, flood_processes(t, (0, 0)), observers=[metrics])
        res = eng.run()
        assert metrics.transmissions == res.trace.transmissions
        # perfect channel, no crashes: every fanout slot is delivered
        assert metrics.deliveries == res.trace.deliveries
        assert metrics.rounds == res.rounds
        assert metrics.quiescent is res.quiescent
        assert sum(metrics.tx_by_round.values()) == metrics.transmissions
        assert sum(metrics.tx_by_node.values()) == metrics.transmissions
        assert sum(metrics.rx_by_node.values()) == metrics.deliveries
        assert metrics.tx_by_round == res.trace.tx_by_round
        assert metrics.tx_by_node == res.trace.tx_by_node

    def test_observed_run_identical_to_unobserved(self):
        t = Torus.square(5, 1)
        plain = Engine(t, flood_processes(t, (1, 2))).run()
        observed = Engine(
            t, flood_processes(t, (1, 2)), observers=[RunMetrics()]
        ).run()
        assert observed.trace.summary() == plain.trace.summary()
        assert observed.rounds == plain.rounds
        assert observed.quiescent is plain.quiescent

    def test_deliveries_exclude_crashed_receivers(self):
        t = Torus.square(5, 1)
        metrics = RunMetrics()
        dead = (1, 1)  # a neighbor of the origin, dead from the start
        eng = Engine(
            t,
            flood_processes(t, (0, 0)),
            crash_round={dead: 0},
            observers=[metrics],
        )
        res = eng.run()
        # the trace counts channel fanout; the collector counts receptions
        assert metrics.deliveries < res.trace.deliveries
        assert dead not in metrics.rx_by_node
        assert metrics.crashes == 1

    def test_crash_counted_once_for_mid_run_crash(self):
        t = Torus.square(5, 1)
        metrics = RunMetrics()
        Engine(
            t,
            flood_processes(t, (0, 0)),
            crash_round={(2, 2): 1},
            observers=[metrics],
        ).run()
        assert metrics.crashes == 1


class TestCommitTracking:
    def test_commit_rounds_and_histogram(self):
        t = Torus.square(3, 1)
        procs = {
            (0, 0): RoundCommitter(0),
            (1, 1): RoundCommitter(2),
            (2, 2): RoundCommitter(2),
        }
        metrics = RunMetrics()
        # silent processes: keep the engine alive past quiescence long
        # enough to observe the late commits
        Engine(
            t,
            procs,
            max_rounds=4,
            quiescent_after_idle_rounds=10,
            observers=[metrics],
        ).run()
        assert metrics.commit_round[(0, 0)] == 0
        assert metrics.commit_round[(1, 1)] == 2
        assert metrics.commit_round[(2, 2)] == 2
        assert metrics.commits == 3
        assert metrics.commit_latency_histogram() == {0: 1, 2: 2}
        assert metrics.commits_by_round == {0: 1, 2: 2}

    def test_on_start_commit_reported_at_round_minus_one(self):
        t = Torus.square(3, 1)
        metrics = RunMetrics()
        Engine(t, {(0, 0): StartCommitter()}, observers=[metrics]).run()
        assert metrics.commit_round[(0, 0)] == -1
        assert metrics.commit_latency_histogram() == {-1: 1}

    def test_commit_reported_once(self):
        t = Torus.square(3, 1)
        events = []

        class CommitLog(EngineObserver):
            def on_commit(self, node, round_, value):
                events.append((node, round_, value))

        Engine(
            t,
            {(1, 1): RoundCommitter(1)},
            max_rounds=4,
            quiescent_after_idle_rounds=10,
            observers=[CommitLog()],
        ).run()
        assert events == [((1, 1), 1, "v")]


class TestWavefront:
    def test_wavefront_monotone_and_bounded(self):
        t = Torus.square(7, 1)
        metrics = RunMetrics(source=(0, 0))
        # end-of-round delivery: the flood advances one hop per round,
        # so the radius grows by at most one neighborhood step per round
        Engine(
            t,
            flood_processes(t, (0, 0)),
            delivery="end-of-round",
            observers=[metrics],
        ).run()
        radii = [
            metrics.delivery_wavefront_by_round[r]
            for r in sorted(metrics.delivery_wavefront_by_round)
        ]
        assert radii == sorted(radii)  # cumulative radius never shrinks
        assert radii[-1] == max(t.distance((0, 0), n) for n in t.nodes())
        # end-of-round mode: round 0 only puts the seed on the air; its
        # receptions land at round 1, reaching exactly the neighbors
        assert radii[0] == 0.0
        assert radii[1] == 1.0

    def test_no_source_disables_wavefront(self):
        t = Torus.square(5, 1)
        metrics = RunMetrics()
        Engine(t, flood_processes(t, (0, 0)), observers=[metrics]).run()
        assert metrics.delivery_wavefront_by_round == {}
        assert metrics.commit_wavefront_by_round == {}
        assert metrics.transmissions > 0

    def test_source_canonicalized(self):
        t = Torus.square(5, 1)
        metrics = RunMetrics(source=(5, 5))  # == (0, 0) on a 5-torus
        Engine(t, flood_processes(t, (0, 0)), observers=[metrics]).run()
        assert metrics.source == (0, 0)


class TestPhaseProfiler:
    def test_fake_clock_totals(self):
        ticks = iter([0.0, 1.0, 1.0, 3.0, 10.0, 14.0])
        prof = PhaseProfiler(clock=lambda: next(ticks))
        t0 = prof.begin()
        prof.end("transmit", t0)
        t0 = prof.begin()
        prof.end("transmit", t0)
        t0 = prof.begin()
        prof.end("deliver", t0)
        assert prof.total("transmit") == pytest.approx(3.0)
        assert prof.total("deliver") == pytest.approx(4.0)
        assert prof.total("unknown") == 0.0
        assert prof.counts == {"transmit": 2, "deliver": 1}

    def test_summary_and_rows(self):
        ticks = iter([0.0, 3.0, 3.0, 4.0])
        prof = PhaseProfiler(clock=lambda: next(ticks))
        prof.end("a", prof.begin())
        prof.end("b", prof.begin())
        assert prof.summary() == {
            "a": {"seconds": 3.0, "calls": 1},
            "b": {"seconds": 1.0, "calls": 1},
        }
        rows = prof.rows()
        assert [r["phase"] for r in rows] == ["a", "b"]
        assert rows[0]["share"] == pytest.approx(0.75)
        assert rows[1]["share"] == pytest.approx(0.25)

    def test_profiled_run_is_unperturbed(self):
        t = Torus.square(5, 1)
        prof = PhaseProfiler()
        plain = Engine(t, flood_processes(t, (0, 0))).run()
        profiled = Engine(
            t, flood_processes(t, (0, 0)), profiler=prof
        ).run()
        assert profiled.trace.summary() == plain.trace.summary()
        assert set(prof.totals) >= {"transmit", "round_hooks", "deliver"}
        assert all(v >= 0.0 for v in prof.totals.values())

    def test_engine_times_observe_phase_only_with_observers(self):
        t = Torus.square(3, 1)
        prof = PhaseProfiler()
        Engine(
            t,
            {(0, 0): Flooder(origin=True)},
            observers=[RunMetrics()],
            profiler=prof,
        ).run()
        assert prof.counts.get("observe", 0) > 0


class TestFunctionProcessRoundEnd:
    def test_on_round_end_dispatch(self):
        calls = []
        p = FunctionProcess(
            on_round=lambda ctx: calls.append(("round", ctx.round)),
            on_round_end=lambda ctx: calls.append(("round_end", ctx.round)),
        )
        t = Torus.square(3, 1)
        Engine(t, {(0, 0): p}, max_rounds=2).run()
        rounds = [c for c in calls if c[0] == "round"]
        ends = [c for c in calls if c[0] == "round_end"]
        assert len(rounds) == len(ends) > 0


class TestEdgeSummaries:
    """Degenerate collectors must still export well-formed summaries."""

    def test_fresh_collector_summary(self):
        # a collector that never observed a run: all-zero counters and
        # null latency stats, not KeyErrors or division by zero
        summary = RunMetrics().summary()
        assert summary["rounds"] == 0
        assert summary["transmissions"] == 0
        assert summary["deliveries"] == 0
        assert summary["commits"] == 0
        assert summary["quiescent"] is None
        assert summary["commit_latency"]["histogram"] == []
        assert summary["commit_latency"]["mean"] is None
        assert summary["tx_by_round"] == []

    def test_ingest_empty_run(self):
        # bulk-loading an empty run (the fastpath shape for a scenario
        # that did nothing) must equal a fresh collector's summary,
        # modulo the facts the run itself establishes
        metrics = RunMetrics()
        metrics.ingest_run(
            source=None,
            transmissions=0,
            deliveries=0,
            crashes=0,
            rounds=0,
            quiescent=True,
            tx_by_round={},
            deliveries_by_round={},
            commits_by_round={},
            tx_by_node={},
            rx_by_node={},
            commit_round={},
            commit_wavefront_by_round={},
            delivery_wavefront_by_round={},
        )
        expected = RunMetrics().summary()
        expected["quiescent"] = True
        assert metrics.summary() == expected

    def test_ingest_replaces_previous_run(self):
        # re-ingesting must reload, not accumulate: the executor reuses
        # observers across cached and live trials
        metrics = RunMetrics()
        for reps in (1, 2):
            metrics.ingest_run(
                source=None,
                transmissions=7,
                deliveries=21,
                crashes=1,
                rounds=3,
                quiescent=False,
                tx_by_round={1: 7},
                deliveries_by_round={1: 21},
                commits_by_round={},
                tx_by_node={(0, 0): 7},
                rx_by_node={(0, 1): 21},
                commit_round={},
                commit_wavefront_by_round={},
                delivery_wavefront_by_round={},
            )
        assert metrics.transmissions == 7
        assert metrics.deliveries == 21
        assert metrics.crashes == 1
