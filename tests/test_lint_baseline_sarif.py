"""Baseline-file and SARIF-reporter tests.

The baseline is the ratchet: known findings live in a checked-in file
(line-number-independent fingerprints), get reported but do not gate,
and disappear from the file the moment the code is fixed.  SARIF is the
interchange artifact CI uploads; these tests pin the minimal 2.1.0
shape consumers rely on (rule metadata, result locations, fingerprints,
``baselineState``).
"""

import json

from repro.lint import (
    fingerprint,
    format_sarif,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.lint.findings import Finding, Severity
from tests.test_lint_rules import write_tree

TAINTED = {
    "repro/exec/specs.py": (
        "import random\n"
        "def run_trial(spec, seed):\n"
        "    return random.random()\n"
    ),
}


def lint_tree(tmp_path, files, baseline_path=None):
    write_tree(tmp_path, files)
    return lint_paths(
        [str(tmp_path)], ["nondet-taint"], baseline_path=baseline_path
    )


class TestFingerprint:
    def test_line_number_independent(self):
        a = Finding(
            rule_id="nondet-taint",
            severity=Severity.ERROR,
            path="x.py",
            line=3,
            col=4,
            message="m",
            module="pkg.x",
        )
        b = Finding(
            rule_id="nondet-taint",
            severity=Severity.ERROR,
            path="elsewhere/x.py",
            line=90,
            col=0,
            message="m",
            module="pkg.x",
        )
        assert fingerprint(a) == fingerprint(b)

    def test_sensitive_to_rule_module_and_message(self):
        base = dict(
            rule_id="r",
            severity=Severity.ERROR,
            path="x.py",
            line=1,
            col=0,
            message="m",
            module="pkg.x",
        )
        a = Finding(**base)
        for key, value in (
            ("rule_id", "other"),
            ("module", "pkg.y"),
            ("message", "m2"),
        ):
            assert fingerprint(a) != fingerprint(
                Finding(**{**base, key: value})
            )


class TestBaselineWorkflow:
    def test_roundtrip_moves_findings_out_of_gate(self, tmp_path):
        report = lint_tree(tmp_path / "tree", TAINTED)
        assert len(report.findings) == 1

        baseline = tmp_path / "baseline.json"
        count = write_baseline(str(baseline), report)
        assert count == 1
        assert load_baseline(str(baseline)) == {
            fingerprint(report.findings[0])
        }

        gated = lint_tree(
            tmp_path / "tree2", TAINTED, baseline_path=str(baseline)
        )
        assert gated.findings == []
        assert len(gated.baselined) == 1
        assert gated.errors == []

    def test_rewrite_drops_fixed_entries(self, tmp_path):
        report = lint_tree(tmp_path / "tree", TAINTED)
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), report)

        clean = lint_tree(
            tmp_path / "clean",
            {
                "repro/exec/specs.py": (
                    "def run_trial(spec, seed):\n    return seed\n"
                ),
            },
        )
        assert write_baseline(str(baseline), clean) == 0
        assert load_baseline(str(baseline)) == set()

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99}')
        try:
            load_baseline(str(bad))
        except ValueError as e:
            assert "version" in str(e)
        else:
            raise AssertionError("expected ValueError")


class TestSarif:
    def test_minimal_valid_shape(self, tmp_path):
        report = lint_tree(tmp_path, TAINTED)
        doc = json.loads(format_sarif(report))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert any(r["id"] == "nondet-taint" for r in driver["rules"])

        (result,) = run["results"]
        assert result["ruleId"] == "nondet-taint"
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] == 3
        assert result["partialFingerprints"]
        assert "baselineState" not in result

    def test_baselined_results_marked_unchanged(self, tmp_path):
        report = lint_tree(tmp_path / "tree", TAINTED)
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), report)
        gated = lint_tree(
            tmp_path / "tree2", TAINTED, baseline_path=str(baseline)
        )
        doc = json.loads(format_sarif(gated))
        (result,) = doc["runs"][0]["results"]
        assert result["baselineState"] == "unchanged"

    def test_parse_failure_surfaces_in_invocation(self, tmp_path):
        write_tree(tmp_path, {"broken.py": "def oops(:\n"})
        report = lint_paths([str(tmp_path)], ["nondet-taint"])
        doc = json.loads(format_sarif(report))
        invocation = doc["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is False
        assert invocation["toolExecutionNotifications"]
