"""Tests for repro.experiments: scenarios, registry, report rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import REGISTRY, all_experiments, get_experiment
from repro.experiments.report import format_table
from repro.experiments.scenarios import (
    BroadcastScenario,
    byzantine_broadcast_scenario,
    crash_broadcast_scenario,
    recommended_torus,
    strip_torus,
)
from repro.faults.byzantine import SilentByzantine
from repro.grid.torus import Torus


class TestTorusHelpers:
    def test_recommended_sides(self):
        assert recommended_torus(1).width == 7
        assert recommended_torus(2).width == 13
        assert recommended_torus(3).width == 19
        assert recommended_torus(2, slack=4).width == 17

    def test_strip_torus_fits_construction(self):
        for r in (1, 2, 3):
            t = strip_torus(r)
            from repro.faults.constructions import torus_crash_partition

            torus_crash_partition(t)  # must not raise

    def test_metric_passthrough(self):
        assert recommended_torus(2, metric="l2").metric.name == "l2"


class TestBroadcastScenario:
    def test_faulty_and_correct_partition(self):
        torus = recommended_torus(1)
        sc = BroadcastScenario(
            topology=torus,
            protocol="cpa",
            t=1,
            byzantine_processes={(3, 3): SilentByzantine()},
            crash_round={(2, 2): 0},
        )
        assert sc.faulty_nodes == {(3, 3), (2, 2)}
        assert (3, 3) not in sc.correct_nodes
        assert len(sc.correct_nodes) == 49 - 2

    def test_overlapping_fault_roles_rejected(self):
        torus = recommended_torus(1)
        with pytest.raises(ConfigurationError, match="both"):
            BroadcastScenario(
                topology=torus,
                protocol="cpa",
                t=1,
                byzantine_processes={(3, 3): SilentByzantine()},
                crash_round={(3, 3): 0},
            )

    def test_faulty_source_rejected(self):
        torus = recommended_torus(1)
        with pytest.raises(ConfigurationError, match="source"):
            BroadcastScenario(
                topology=torus,
                protocol="cpa",
                t=1,
                byzantine_processes={(0, 0): SilentByzantine()},
            )

    def test_noncanonical_coordinates(self):
        torus = recommended_torus(1)
        sc = BroadcastScenario(
            topology=torus,
            protocol="cpa",
            t=1,
            byzantine_processes={(-1, -1): SilentByzantine()},
        )
        assert (6, 6) in sc.faulty_nodes

    def test_run_returns_graded_outcome(self):
        sc = byzantine_broadcast_scenario(r=1, t=1, protocol="cpa")
        out = sc.run()
        assert out.correct_nodes == frozenset(sc.correct_nodes)
        assert isinstance(out.achieved, bool)


class TestScenarioBuilders:
    def test_strip_placement_respects_budget_when_enforced(self):
        sc = byzantine_broadcast_scenario(r=2, t=3, strategy="silent")
        sc.validate()  # trimmed to t=3

    def test_unknown_placement(self):
        with pytest.raises(ConfigurationError, match="placement"):
            byzantine_broadcast_scenario(r=1, t=1, placement="spiral")
        with pytest.raises(ConfigurationError, match="placement"):
            crash_broadcast_scenario(r=1, t=1, placement="spiral")

    def test_random_placement_deterministic_per_seed(self):
        a = byzantine_broadcast_scenario(r=1, t=1, placement="random", seed=4)
        b = byzantine_broadcast_scenario(r=1, t=1, placement="random", seed=4)
        assert a.faulty_nodes == b.faulty_nodes

    def test_protocol_kwargs_passthrough(self):
        sc = byzantine_broadcast_scenario(
            r=1, t=1, protocol="bv-indirect", max_relays=2
        )
        out = sc.run()
        assert out.achieved

    def test_crash_staggered(self):
        sc = crash_broadcast_scenario(r=1, t=2, staggered_max_round=3)
        assert any(v > 0 for v in sc.crash_round.values()) or sc.crash_round


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        """Every figure (1-19) and Table I of the paper maps to an
        experiment."""
        refs = " ".join(e.paper_ref for e in all_experiments())
        for artifact in (
            "Table I",
            "Figures 1-3",
            "Figures 4-6",
            "Figure 7",
            "Figure 8",
            "Figures 9-10",
            "Figures 11-12",
            "Figure 13",
            "Figures 14-19",
        ):
            assert artifact in refs, artifact

    def test_all_theorems_covered(self):
        refs = " ".join(e.paper_ref for e in all_experiments())
        for thm in ("Theorem 1", "Theorems 4-5", "Theorem 6"):
            assert thm in refs

    def test_lookup(self):
        exp = get_experiment("EXP-T1")
        assert exp.paper_ref == "Table I"
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("EXP-NOPE")

    def test_registry_consistent(self):
        assert set(REGISTRY) == {e.exp_id for e in all_experiments()}

    def test_quick_runners_execute(self):
        """Smoke-run the cheap analytic experiments end to end."""
        rows = get_experiment("EXP-F1_3").run(radii=(1, 2))
        assert all(row["match"] for row in rows)
        rows = get_experiment("EXP-T1").run(radii=(2, 3))
        assert all(row["match"] for row in rows)
        rows = get_experiment("EXP-F14_19").run(radii=(2, 3))
        assert all(row["holds"] for row in rows)
        rows = get_experiment("EXP-THRESH").run(radii=(1, 2))
        assert len(rows) == 2

    def test_wave_runner(self):
        rows = get_experiment("EXP-WAVE").run(r=1)
        assert rows[0]["distance"] == 0
        assert all(row["nodes"] >= 1 for row in rows)

    def test_section_x_runner(self):
        rows = get_experiment("EXP-SECX").run(r=1)
        regimes = {row["regime"] for row in rows}
        assert "spoofing allowed" in regimes
        assert any(not row["safe"] for row in rows)  # the spoofing row

    def test_boundary_runner(self):
        rows = get_experiment("EXP-BOUNDARY").run(
            radii=(1,), side=9, trials=2
        )
        assert rows[0]["corner_cut_bounded"] < rows[0]["interior_cut_torus"]


class TestReport:
    def test_format_basic(self):
        out = format_table(
            [{"a": 1, "b": True}, {"a": 2.5, "b": False}], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "yes" in out and "no" in out
        assert "2.5" in out

    def test_column_order(self):
        out = format_table([{"z": 1, "a": 2}], columns=["a", "z"])
        header = out.splitlines()[0]
        assert header.index("a") < header.index("z")

    def test_missing_cells(self):
        out = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in out

    def test_empty(self):
        assert "(no rows)" in format_table([], title="X")

    def test_float_trimming(self):
        out = format_table([{"v": 2.000}])
        assert "2" in out and "2.000" not in out
