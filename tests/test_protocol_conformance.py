"""Protocol conformance suite: uniform behavioral requirements, checked
for every registered protocol on multiple topologies.

Every protocol, whatever its commit rule, must:

- achieve broadcast on a fault-free torus;
- achieve broadcast on a fault-free bounded grid (truncated
  neighborhoods must not break message handling);
- have the source and its direct neighbors commit to the source value;
- never let a correct node commit a wrong value under a lying adversary
  (Byzantine-tolerant protocols only -- crash-flood is explicitly exempt
  and *documented* to fail this);
- produce deterministic outcomes for identical configurations.
"""

import pytest

from repro.experiments.scenarios import byzantine_broadcast_scenario, recommended_torus
from repro.grid.bounded import BoundedGrid
from repro.protocols.registry import correct_process_map, protocol_names
from repro.radio.run import run_broadcast

ALL_PROTOCOLS = sorted(protocol_names())
BYZANTINE_SAFE = [p for p in ALL_PROTOCOLS if p != "crash-flood"]


def fault_free(topology, protocol, source, t=1, value=1, max_rounds=100):
    correct = set(topology.nodes())
    processes = correct_process_map(
        topology, protocol, t, source, value, correct
    )
    return run_broadcast(
        topology, processes, value, correct, max_rounds=max_rounds
    )


class TestFaultFreeTorus:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_broadcast_achieved(self, protocol):
        torus = recommended_torus(1)
        out = fault_free(torus, protocol, (0, 0))
        assert out.achieved, protocol

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_source_commits_to_own_value(self, protocol):
        torus = recommended_torus(1)
        out = fault_free(torus, protocol, (0, 0), value="payload")
        assert out.result.processes[(0, 0)].committed_value() == "payload"

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_source_neighbors_commit_directly(self, protocol):
        torus = recommended_torus(1)
        out = fault_free(torus, protocol, (0, 0))
        committed = out.result.committed()
        for nb in torus.neighbors((0, 0)):
            assert committed.get(nb) == 1, (protocol, nb)


class TestFaultFreeBoundedGrid:
    @pytest.mark.parametrize(
        "protocol", [p for p in ALL_PROTOCOLS if p != "bv-earmarked"]
    )
    def test_broadcast_achieved(self, protocol):
        # bv-earmarked assumes frontier constructions that boundary
        # truncation invalidates; it is torus/infinite-grid only.
        grid = BoundedGrid.square(7, 1)
        out = fault_free(grid, protocol, (3, 3))
        assert out.achieved, protocol


class TestByzantineSafety:
    @pytest.mark.parametrize("protocol", BYZANTINE_SAFE)
    def test_no_wrong_commits_under_liars(self, protocol):
        sc = byzantine_broadcast_scenario(
            r=1, t=1, protocol=protocol, strategy="liar"
        )
        sc.validate()
        out = sc.run()
        assert out.safe, protocol

    @pytest.mark.parametrize("protocol", BYZANTINE_SAFE)
    def test_no_wrong_commits_under_noise(self, protocol):
        sc = byzantine_broadcast_scenario(
            r=1, t=1, protocol=protocol, strategy="noise", seed=3
        )
        sc.validate()
        out = sc.run()
        assert out.safe, protocol


class TestProtocolAgreement:
    """Different Byzantine-tolerant protocols on the same scenario must
    commit the same (source) value at every correct node that decides."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_two_hop_vs_earmarked_agree(self, seed):
        outcomes = {}
        for protocol in ("bv-two-hop", "bv-earmarked"):
            sc = byzantine_broadcast_scenario(
                r=1,
                t=1,
                protocol=protocol,
                strategy="fabricator",
                placement="random",
                seed=seed,
            )
            outcomes[protocol] = sc.run()
        a = outcomes["bv-two-hop"].result.committed()
        b = outcomes["bv-earmarked"].result.committed()
        for node in set(a) & set(b):
            assert a[node] == b[node]
        assert outcomes["bv-two-hop"].achieved
        assert outcomes["bv-earmarked"].achieved


class TestEngineNodeValidation:
    def test_process_for_nonexistent_node_rejected(self):
        from repro.errors import ConfigurationError
        from repro.radio.engine import Engine
        from repro.radio.node import SilentProcess

        grid = BoundedGrid.square(5, 1)
        with pytest.raises(ConfigurationError, match="non-node"):
            Engine(grid, {(9, 9): SilentProcess()})


class TestDeliveryModeIndependence:
    """Correctness must not depend on intra-frame timing: the synchronous
    (end-of-round) delivery mode reaches the same verdicts."""

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_end_of_round_fault_free(self, protocol):
        torus = recommended_torus(1)
        correct = set(torus.nodes())
        processes = correct_process_map(
            torus, protocol, 1, (0, 0), 1, correct
        )
        out = run_broadcast(
            torus,
            processes,
            1,
            correct,
            max_rounds=200,
            delivery="end-of-round",
        )
        assert out.achieved, protocol

    @pytest.mark.parametrize("protocol", BYZANTINE_SAFE)
    def test_end_of_round_threshold_behavior(self, protocol):
        sc = byzantine_broadcast_scenario(
            r=1, t=1, protocol=protocol, strategy="liar"
        )
        sc.delivery = "end-of-round"
        sc.validate()
        out = sc.run()
        assert out.safe
        assert out.achieved

    def test_wave_takes_more_rounds_than_immediate(self):
        fast = byzantine_broadcast_scenario(
            r=1, t=1, protocol="cpa", strategy="silent"
        ).run()
        slow_sc = byzantine_broadcast_scenario(
            r=1, t=1, protocol="cpa", strategy="silent"
        )
        slow_sc.delivery = "end-of-round"
        slow = slow_sc.run()
        assert slow.achieved and fast.achieved
        assert slow.rounds > fast.rounds  # one pnbd hop per round


class TestDeterminism:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_identical_runs_identical_outcomes(self, protocol):
        def run_once():
            sc = byzantine_broadcast_scenario(
                r=1, t=1, protocol=protocol, strategy="fabricator", seed=9
            )
            out = sc.run()
            return (
                out.achieved,
                out.messages,
                out.rounds,
                tuple(sorted(out.result.committed().items())),
            )

        assert run_once() == run_once()
